#include "core/experiment.h"

#include <algorithm>
#include <memory>

#include "fault/injector.h"
#include "lb/balancer.h"
#include "net/capture.h"
#include "net/topology.h"
#include "server/fault_shim.h"
#include "sim/simulation.h"
#include "stats/summary.h"
#include "util/error.h"
#include "util/logging.h"
#include "util/strings.h"

namespace treadmill {
namespace core {

double
ExperimentResult::aggregatedQuantile(double q, AggregationKind kind) const
{
    if (instances.empty())
        throw NumericalError("experiment produced no instances");
    if (kind == AggregationKind::Holistic)
        return stats::quantile(mergedSamples(), q);

    // Extract the metric per instance, then aggregate the metrics.
    std::vector<double> perInstance;
    perInstance.reserve(instances.size());
    for (const InstanceReport &inst : instances) {
        const auto it = inst.quantiles.find(q);
        if (it != inst.quantiles.end()) {
            perInstance.push_back(it->second);
        } else if (!inst.rawSamples.empty()) {
            perInstance.push_back(stats::quantile(inst.rawSamples, q));
        }
    }
    if (perInstance.empty())
        throw NumericalError("no instance collected samples");
    return stats::mean(perInstance);
}

std::vector<double>
ExperimentResult::mergedSamples() const
{
    std::vector<double> merged;
    for (const InstanceReport &inst : instances)
        merged.insert(merged.end(), inst.rawSamples.begin(),
                      inst.rawSamples.end());
    return merged;
}

std::size_t
ExperimentResult::instancesAtTarget() const
{
    std::size_t n = 0;
    for (const InstanceReport &inst : instances)
        n += inst.reachedTarget ? 1 : 0;
    return n;
}

double
deriveRequestRate(const ExperimentParams &params)
{
    if (params.requestsPerSecond > 0.0)
        return params.requestsPerSecond;

    // Probe the expected per-request service time under this config by
    // building a scratch machine with the run's placement.
    sim::Simulation scratch;
    hw::Machine machine(scratch, params.machine, params.config,
                        params.seed);
    double serviceSeconds = 0.0;
    if (params.kind == WorkloadKind::Memcached) {
        server::MemcachedServer probe(machine, params.memcachedParams,
                                      params.seed);
        serviceSeconds =
            probe.expectedServiceSeconds(params.workload.valueBytesMean);
    } else if (params.kind == WorkloadKind::Mcrouter) {
        server::McrouterServer probe(machine, params.mcrouterParams,
                                     params.seed);
        serviceSeconds =
            probe.expectedServiceSeconds(params.workload.valueBytesMean);
    } else {
        server::SqlishServer probe(machine, params.sqlishParams,
                                   params.seed);
        serviceSeconds = probe.expectedServiceSeconds();
    }
    TM_ASSERT(serviceSeconds > 0.0, "service time must be positive");
    const double capacity =
        static_cast<double>(params.machine.workerThreads) /
        serviceSeconds;
    return params.targetUtilization * capacity;
}

namespace {

/** Standard quantile grid extracted from every instance collector. */
const double kQuantileGrid[] = {0.5, 0.9, 0.95, 0.99, 0.999};

/** Mutable state shared by the wiring lambdas. */
struct Harness {
    ExperimentParams params;
    sim::Simulation sim;
    std::unique_ptr<hw::Machine> machine;
    std::unique_ptr<server::MemcachedServer> memcached;
    std::unique_ptr<server::McrouterServer> mcrouter;
    std::unique_ptr<server::SqlishServer> sqlish;
    std::unique_ptr<net::Cluster> cluster;
    net::PacketCapture capture;
    /** Sharded backend tier; all empty/null when
     *  params.cluster.backends == 0, so the classic path builds no
     *  extra state at all. */
    std::unique_ptr<net::ShardFabric> fabric;
    std::unique_ptr<lb::LoadBalancer> balancer;
    std::vector<std::unique_ptr<hw::Machine>> backendMachines;
    std::vector<std::unique_ptr<server::MemcachedServer>> backendServers;
    std::vector<std::unique_ptr<server::ServiceFaultShim>> backendShims;
    /** Fault machinery; both null when params.faultPlan is empty, so
     *  an un-faulted run takes the raw service path untouched. */
    std::unique_ptr<server::ServiceFaultShim> faultShim;
    std::unique_ptr<fault::FaultInjector> injector;
    std::vector<std::unique_ptr<LoadTesterInstance>> instances;
    obs::TraceRecorder recorder;
    obs::SpanRecorder spanRecorder;
    obs::TelemetrySampler sampler;
    bool deadlineHit = false;

    std::uint64_t responsesCompleted = 0;
    std::vector<double> serverComponentUs;
    std::vector<double> networkComponentUs;
    std::vector<double> clientComponentUs;
    std::vector<double> getLatencyUs;
    std::vector<double> setLatencyUs;

    server::Service &
    rawService()
    {
        if (memcached)
            return *memcached;
        if (mcrouter)
            return *mcrouter;
        return *sqlish;
    }

    /** The request sink: the fault shim when one is wired, else the
     *  real server. */
    server::Service &
    service()
    {
        if (faultShim)
            return *faultShim;
        return rawService();
    }

    /** Backend @p i's request sink: its shim when faults are wired. */
    server::Service &
    backendService(std::size_t i)
    {
        if (!backendShims.empty())
            return *backendShims[i];
        return *backendServers[i];
    }

    /**
     * One telemetry snapshot, self-rescheduling on the sampler's
     * period until the tick cap is hit. Probes are read-only and
     * Rng-free, so these events never perturb the request trajectory.
     */
    void
    telemetryTick()
    {
        sampler.sample(sim.now());
        if (!sampler.full())
            sim.schedule(sampler.period(), [this] { telemetryTick(); });
    }
};

/**
 * Build the sharded backend tier: fabric links, per-shard machines and
 * Memcached services (scoped "backend<i>"), per-shard fault shims when
 * the run has a fault plan, and the balancer whose forward hooks carry
 * each request across the fabric and back.
 */
void
wireClusterTier(Harness *h)
{
    const ExperimentParams &params = h->params;
    const ClusterParams &cl = params.cluster;
    if (params.kind != WorkloadKind::Mcrouter)
        throw ConfigError(
            "a backend cluster requires the mcrouter workload");
    if (cl.racks == 0)
        throw ConfigError("cluster needs at least one rack");
    if (cl.racks > cl.backends)
        throw ConfigError("cluster has more racks than backends");

    std::vector<net::ShardFabric::BackendSpec> specs(cl.backends);
    for (std::uint32_t b = 0; b < cl.backends; ++b) {
        specs[b].rack = cl.rackOf(b);
        specs[b].linkGbps = cl.backendLinkGbps;
    }
    h->fabric = std::make_unique<net::ShardFabric>(h->sim, specs);

    lb::BalancerParams bp;
    bp.backends = cl.backends;
    bp.replication = cl.replication;
    bp.vnodesPerBackend = cl.vnodesPerBackend;
    bp.maxInflightPerBackend = cl.maxInflightPerBackend;
    bp.policy = cl.policy;
    bp.edfSlackUs = cl.edfSlackUs;
    bp.seed = params.seed;
    h->balancer = std::make_unique<lb::LoadBalancer>(h->sim, bp);

    const bool withShims = !params.faultPlan.empty();
    for (std::uint32_t b = 0; b < cl.backends; ++b) {
        // Distinct placement/jitter streams per shard, derived only
        // from the run seed and the shard id.
        const std::uint64_t shardSeed = params.seed * 8191 + b + 1;
        h->backendMachines.push_back(std::make_unique<hw::Machine>(
            h->sim, params.machine, params.config, shardSeed));
        h->backendServers.push_back(
            std::make_unique<server::MemcachedServer>(
                *h->backendMachines.back(), params.memcachedParams,
                shardSeed, strprintf("backend%u", b),
                /*backendRole=*/true));
        if (withShims) {
            h->backendShims.push_back(
                std::make_unique<server::ServiceFaultShim>(
                    h->sim, *h->backendServers.back(),
                    strprintf("backend%u", b)));
        }

        lb::LoadBalancer::Backend hook;
        hook.forward = [h, b](server::RequestPtr request,
                              server::RespondFn respond) {
            net::Packet pkt;
            pkt.seqId = request->seqId;
            pkt.connectionId = request->connectionId;
            pkt.bytes = request->requestBytes;
            pkt.kind = net::PacketKind::Request;
            h->fabric->toBackend(b).send(
                h->sim, pkt,
                [h, b, request = std::move(request),
                 respond = std::move(respond)](const net::Packet &) mutable {
                    request->backendNicArrival = h->sim.now();
                    h->backendService(b).receive(
                        std::move(request),
                        [h, b, respond = std::move(respond)](
                            const server::RequestPtr &resp) {
                            net::Packet out;
                            out.seqId = resp->seqId;
                            out.connectionId = resp->connectionId;
                            out.bytes = resp->responseBytes;
                            out.kind = net::PacketKind::Response;
                            h->fabric->fromBackend(b).send(
                                h->sim, out,
                                [respond, resp](const net::Packet &) {
                                    respond(resp);
                                });
                        });
                });
        };
        if (withShims) {
            server::ServiceFaultShim *shim = h->backendShims.back().get();
            hook.healthy = [shim] { return !shim->crashed(); };
        }
        h->balancer->addBackend(std::move(hook));
    }

    h->mcrouter->setBackendPool(h->balancer.get());
}

} // namespace

ExperimentResult
runExperiment(const ExperimentParams &params)
{
    if (params.tester.clientMachines == 0)
        throw ConfigError("experiment needs at least one client");

    auto h = std::make_unique<Harness>();
    h->params = params;
    h->recorder = obs::TraceRecorder(params.trace);
    h->spanRecorder = obs::SpanRecorder(params.trace);
    h->sampler = obs::TelemetrySampler(params.telemetry);

    h->machine = std::make_unique<hw::Machine>(h->sim, params.machine,
                                               params.config, params.seed);
    if (params.kind == WorkloadKind::Memcached) {
        h->memcached = std::make_unique<server::MemcachedServer>(
            *h->machine, params.memcachedParams, params.seed);
    } else if (params.kind == WorkloadKind::Mcrouter) {
        h->mcrouter = std::make_unique<server::McrouterServer>(
            *h->machine, params.mcrouterParams, params.seed);
    } else {
        h->sqlish = std::make_unique<server::SqlishServer>(
            *h->machine, params.sqlishParams, params.seed);
    }

    std::vector<net::Cluster::ClientSpec> clientSpecs(
        params.tester.clientMachines);
    if (params.oneRemoteRackClient && !clientSpecs.empty())
        clientSpecs[0].remoteRack = true;
    h->cluster = std::make_unique<net::Cluster>(
        h->sim, params.machine.nicGbps, clientSpecs);

    if (params.cluster.backends > 0)
        wireClusterTier(h.get());

    if (!params.faultPlan.empty()) {
        h->faultShim = std::make_unique<server::ServiceFaultShim>(
            h->sim, h->rawService());
        h->injector = std::make_unique<fault::FaultInjector>(
            h->sim, params.faultPlan, params.seed);
        std::vector<net::Link *> links = h->cluster->allLinks();
        if (h->fabric) {
            const std::vector<net::Link *> fabricLinks =
                h->fabric->allLinks();
            links.insert(links.end(), fabricLinks.begin(),
                         fabricLinks.end());
        }
        h->injector->attachLinks(links);
        h->injector->attachShim(*h->faultShim);
        h->injector->attachNic(h->machine->mutableNic());
        for (std::size_t b = 0; b < h->backendShims.size(); ++b)
            h->injector->attachBackendShim(
                static_cast<std::uint32_t>(b), *h->backendShims[b]);
        for (std::size_t b = 0; b < h->backendMachines.size(); ++b)
            h->injector->attachBackendNic(
                static_cast<std::uint32_t>(b),
                h->backendMachines[b]->mutableNic());
        if (h->fabric) {
            for (std::uint32_t r = 0; r < params.cluster.racks; ++r)
                h->injector->attachRackLinks(r, h->fabric->rackLinks(r));
        }
        h->injector->arm();
    }

    const double totalRps = deriveRequestRate(params);
    const double perClientRps =
        totalRps / static_cast<double>(params.tester.clientMachines);

    // Estimate the mean response time for closed-loop slot sizing:
    // expected service + network round trip + client costs.
    double estServiceSeconds = 0.0;
    switch (params.kind) {
      case WorkloadKind::Memcached:
        estServiceSeconds = h->memcached->expectedServiceSeconds(
            params.workload.valueBytesMean);
        break;
      case WorkloadKind::Mcrouter:
        estServiceSeconds = h->mcrouter->expectedServiceSeconds(
            params.workload.valueBytesMean);
        break;
      case WorkloadKind::Sqlish:
        estServiceSeconds = h->sqlish->expectedServiceSeconds();
        break;
    }
    const double estMeanResponseSeconds = estServiceSeconds + 20e-6;

    for (std::size_t i = 0; i < params.tester.clientMachines; ++i) {
        ClientParams cp;
        cp.index = i;
        cp.requestsPerSecond = perClientRps;
        cp.connections = params.connectionsPerClientMux;
        cp.loop = params.tester.loop;
        cp.closedLoopSlots =
            params.tester.connectionsPerClient > 0
                ? params.tester.connectionsPerClient
                : closedLoopConnectionsFor(perClientRps,
                                           estMeanResponseSeconds);
        cp.rateLimitedClosedLoop = params.tester.rateLimitedClosedLoop;
        cp.collector = params.collector;
        cp.sendCostUs = params.clientSendCostUs;
        cp.receiveCostUs = params.clientReceiveCostUs;
        cp.kernelDelayUs = params.clientKernelDelayUs;
        cp.resilience = params.resilience;
        cp.recordSpans = params.trace.enabled;
        cp.seed = params.seed * 1009 + i;

        auto *harness = h.get();
        auto instance = std::make_unique<LoadTesterInstance>(
            h->sim, cp, params.workload,
            [harness, i](server::RequestPtr request) {
                // Client NIC -> network -> server NIC.
                net::Packet pkt;
                pkt.seqId = request->seqId;
                pkt.connectionId = request->connectionId;
                pkt.bytes = request->requestBytes;
                pkt.kind = net::PacketKind::Request;
                harness->cluster->clientToServer(i).send(
                    harness->sim, pkt,
                    [harness, request = std::move(request)](
                        const net::Packet &arrived) mutable {
                        harness->capture.onRequest(arrived,
                                                   harness->sim.now());
                        request->nicArrival = harness->sim.now();
                        harness->service().receive(
                            std::move(request),
                            [harness](const server::RequestPtr &resp) {
                                // Response leaves the server NIC.
                                net::Packet out;
                                out.seqId = resp->seqId;
                                out.connectionId = resp->connectionId;
                                out.bytes = resp->responseBytes;
                                out.kind = net::PacketKind::Response;
                                harness->capture.onResponse(
                                    out, harness->sim.now());
                                const auto client = static_cast<
                                    std::size_t>(resp->clientIndex);
                                harness->cluster->serverToClient(client)
                                    .send(harness->sim, out,
                                          [harness,
                                           resp](const net::Packet &) {
                                              resp->clientNicArrival =
                                                  harness->sim.now();
                                              harness
                                                  ->instances[static_cast<
                                                      std::size_t>(
                                                      resp->clientIndex)]
                                                  ->onResponseDelivered(
                                                      resp);
                                          });
                            });
                    });
            });
        if (params.trace.enabled) {
            instance->setSpanSink([harness](const obs::SpanTrace &s) {
                harness->spanRecorder.record(s);
            });
        }
        h->instances.push_back(std::move(instance));
    }

    // Size the per-request component vectors up front (headroom for
    // retried/cloned attempts) so the completion hook never reallocates.
    const std::size_t expectedResponses =
        static_cast<std::size_t>(params.tester.clientMachines) *
            (params.collector.warmUpSamples +
             params.collector.calibrationSamples +
             params.collector.measurementSamples) * 5 / 4 +
        1024;
    h->serverComponentUs.reserve(expectedResponses);
    h->networkComponentUs.reserve(expectedResponses);
    h->clientComponentUs.reserve(expectedResponses);
    h->getLatencyUs.reserve(expectedResponses);
    h->setLatencyUs.reserve(expectedResponses);
    h->spanRecorder.reserveFor(expectedResponses);

    // Completion hook: decompose latency, stop load at per-instance
    // targets, stop the simulation when every instance is done.
    for (auto &instance : h->instances) {
        auto *harness = h.get();
        instance->setCompletionHook(
            [harness](const server::RequestPtr &req) {
                ++harness->responsesCompleted;
                harness->serverComponentUs.push_back(
                    req->serverLatencyUs());
                harness->networkComponentUs.push_back(
                    toMicros((req->nicArrival - req->clientSend) +
                             (req->clientNicArrival -
                              req->nicDeparture)));
                harness->clientComponentUs.push_back(
                    toMicros((req->clientSend - req->intendedSend) +
                             (req->clientReceive -
                              req->clientNicArrival)));
                (req->op == server::OpType::Get
                     ? harness->getLatencyUs
                     : harness->setLatencyUs)
                    .push_back(req->clientLatencyUs());

                if (harness->params.trace.enabled) {
                    obs::RequestTrace trace;
                    trace.seqId = req->seqId;
                    trace.connectionId = req->connectionId;
                    trace.clientIndex = req->clientIndex;
                    trace.isGet = req->op == server::OpType::Get;
                    trace.hit = req->hit;
                    trace.backendId = req->backendId;
                    trace.intendedSend = req->intendedSend;
                    trace.clientSend = req->clientSend;
                    trace.nicArrival = req->nicArrival;
                    trace.workerStart = req->workerStart;
                    trace.workerEnd = req->workerEnd;
                    trace.nicDeparture = req->nicDeparture;
                    trace.clientNicArrival = req->clientNicArrival;
                    trace.clientReceive = req->clientReceive;
                    // Satellite of the span model: the flat trace
                    // learns when the *winning* attempt was triggered,
                    // so its decomposition accounts the pre-win gap
                    // explicitly instead of smearing it over client
                    // queueing.
                    trace.winnerTrigger = req->triggerAt;
                    harness->recorder.record(trace);
                }

                bool allDone = true;
                for (auto &inst : harness->instances) {
                    if (inst->done())
                        inst->stopLoad();
                    else
                        allDone = false;
                }
                if (allDone)
                    harness->sim.stop();
            });
    }

    // Telemetry: register every probe (registration order is the
    // stable export order), then kick the first tick at t=0. Probes
    // are plain reads of state the run maintains anyway.
    if (params.telemetry.enabled) {
        auto *harness = h.get();
        harness->sampler.addProbe("sim.event_queue_depth", [harness] {
            return static_cast<double>(harness->sim.pendingEvents());
        });
        harness->sampler.addProbe(
            "server.worker_utilization", [harness] {
                return harness->machine->workerUtilization();
            });
        for (std::size_t i = 0; i < h->instances.size(); ++i) {
            LoadTesterInstance *inst = h->instances[i].get();
            harness->sampler.addProbe(
                strprintf("client%zu.outstanding", i), [inst] {
                    return static_cast<double>(inst->outstanding());
                });
            harness->sampler.addProbe(
                strprintf("client%zu.pool_slabs", i), [inst] {
                    return static_cast<double>(
                        inst->requestPoolSlabs());
                });
        }
        if (h->balancer) {
            lb::LoadBalancer *bal = h->balancer.get();
            harness->sampler.addProbe("lb.queue_depth", [bal] {
                return static_cast<double>(bal->queueDepth());
            });
            for (std::uint32_t b = 0; b < params.cluster.backends;
                 ++b) {
                harness->sampler.addProbe(
                    strprintf("backend%u.inflight", b), [bal, b] {
                        return static_cast<double>(bal->inflightOf(b));
                    });
                hw::Machine *bm = h->backendMachines[b].get();
                harness->sampler.addProbe(
                    strprintf("backend%u.worker_utilization", b),
                    [bm] { return bm->workerUtilization(); });
            }
        }
        h->telemetryTick();
    }

    for (auto &instance : h->instances)
        instance->start();
    h->sim.scheduleAt(params.deadline, [harness = h.get()] {
        warn("experiment", "hit the simulated-time deadline");
        harness->deadlineHit = true;
        harness->sim.stop();
    });
    h->sim.run();

    // Harvest results.
    ExperimentResult result;
    result.targetRps = totalRps;
    result.simulatedTime = h->sim.now();
    result.serverUtilization = h->machine->workerUtilization();
    result.frequencyTransitions = h->machine->totalFrequencyTransitions();
    result.achievedRps =
        h->sim.now() > 0
            ? static_cast<double>(h->responsesCompleted) /
                  toSeconds(h->sim.now())
            : 0.0;
    result.groundTruthUs = h->capture.latenciesUs();
    result.deadlineHit = h->deadlineHit;

    // Surface the tcpdump-analogue's diagnostics instead of silently
    // dropping them. Unmatched responses mean the capture's matching
    // broke -- always worth a warning. Requests still outstanding at
    // the end are expected teardown residue (in-flight when the last
    // collector finished), so they only warrant a warning when the run
    // was cut short by its deadline.
    result.captureUnmatchedResponses = h->capture.unmatchedResponses();
    result.captureOutstanding = h->capture.outstanding();
    if (result.captureUnmatchedResponses > 0) {
        warn("capture",
             strprintf("%llu responses had no matching request",
                       static_cast<unsigned long long>(
                           result.captureUnmatchedResponses)));
    }
    if (result.captureOutstanding > 0) {
        const std::string msg = strprintf(
            "%zu requests still outstanding at experiment end",
            result.captureOutstanding);
        if (h->deadlineHit)
            warn("capture", msg);
        else
            inform("capture", msg);
    }

    result.traces = h->recorder.takeTraces();
    result.spans = h->spanRecorder.takeSpans();
    result.telemetry = h->sampler.takeSeries();
    if (h->injector)
        result.faultWindows = h->injector->annotations();
    result.serverComponentUs = std::move(h->serverComponentUs);
    result.networkComponentUs = std::move(h->networkComponentUs);
    result.clientComponentUs = std::move(h->clientComponentUs);
    result.getLatencyUs = std::move(h->getLatencyUs);
    result.setLatencyUs = std::move(h->setLatencyUs);

    for (std::size_t i = 0; i < h->instances.size(); ++i) {
        const LoadTesterInstance &inst = *h->instances[i];
        InstanceReport report;
        report.rawSamples = inst.collector().rawSamples();
        report.measured = inst.collector().measured();
        report.reachedTarget = inst.done();
        report.cpuUtilization = inst.cpuUtilization();
        report.remoteRack = h->cluster->isRemoteRack(i);
        report.outstandingAtSend = inst.outstandingAtSend();
        report.trajectory = inst.collector().trajectory();
        if (report.measured > 0) {
            for (double q : kQuantileGrid)
                report.quantiles[q] = inst.collector().quantile(q);
        }
        result.instances.push_back(std::move(report));
    }

    if (h->balancer) {
        for (std::uint32_t b = 0; b < params.cluster.backends; ++b) {
            result.backendServed.push_back(
                h->backendServers[b]->served());
            result.backendDispatched.push_back(
                h->balancer->dispatchedTo(b));
        }
        result.lbQueued = h->balancer->queued();
        result.lbUnroutable = h->balancer->unroutable();
        result.lbFailovers = h->balancer->failovers();
    }

    // Final gauge values that are only known at harvest time, then a
    // snapshot of everything the run's components recorded.
    obs::MetricsRegistry &registry = h->sim.metrics();
    for (std::size_t i = 0; i < h->instances.size(); ++i) {
        registry
            .gauge(strprintf("client%zu.cpu_utilization", i))
            .set(h->instances[i]->cpuUtilization());
    }
    registry.gauge("server.worker_utilization")
        .set(h->machine->workerUtilization());
    result.metrics = registry.snapshot();
    return result;
}

std::vector<ExperimentResult>
runExperiments(const std::vector<ExperimentParams> &runs,
               const exec::Parallelism &parallelism,
               const exec::ProgressFn &progress)
{
    exec::ParallelRunner runner(parallelism);
    runner.onProgress(progress);
    return runner.run(
        runs.size(),
        [&runs](std::size_t i) { return runExperiment(runs[i]); },
        [](const ExperimentResult &r) {
            return toSeconds(r.simulatedTime);
        });
}

ProcedureResult
repeatedProcedure(const ProcedureParams &params)
{
    stats::ConvergenceTracker tracker(params.tolerance, params.window,
                                      params.minRuns);
    ProcedureResult result;

    // Runs are launched in waves of one per worker lane. Metrics are
    // consumed strictly in run-index order and convergence is checked
    // after each one, so the output matches the serial loop exactly;
    // runs computed past the convergence point are simply discarded.
    const std::size_t lanes =
        std::max<std::size_t>(1, params.parallelism.resolve());
    std::size_t launched = 0;
    while (launched < params.maxRuns && !tracker.converged()) {
        const std::size_t batch =
            std::min(lanes, params.maxRuns - launched);
        std::vector<ExperimentParams> wave;
        wave.reserve(batch);
        for (std::size_t k = 0; k < batch; ++k) {
            ExperimentParams runParams = params.base;
            // Fresh run seed => fresh placement: the hysteresis
            // dimension. Seeds depend only on the run index.
            runParams.seed =
                params.base.seed + (launched + k) * 7919 + 13;
            wave.push_back(std::move(runParams));
        }
        const std::vector<ExperimentResult> outcomes =
            runExperiments(wave, params.parallelism);
        for (const ExperimentResult &outcome : outcomes) {
            const double metric = outcome.aggregatedQuantile(
                params.quantile, params.aggregation);
            tracker.add(metric);
            result.perRunMetric.push_back(metric);
            if (tracker.converged())
                break;
        }
        launched += batch;
    }
    result.runs = result.perRunMetric.size();
    result.mean = stats::mean(result.perRunMetric);
    result.stddev = stats::stddev(result.perRunMetric);
    result.converged = tracker.converged();
    return result;
}

} // namespace core
} // namespace treadmill
