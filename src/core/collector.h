/**
 * @file
 * Three-phase latency sample collection (paper S III-A, "Statistical
 * aggregation").
 *
 * A Treadmill execution passes through warm-up (samples discarded),
 * calibration (raw samples establish the adaptive histogram's bounds),
 * and measurement (samples accumulate into the histogram, which
 * re-bins if the tail outgrows it). A reservoir keeps a bounded
 * uniform sub-sample of raw measurement values for the attribution
 * pipeline's 20k-sample draws.
 *
 * The collector can also be configured to model the flawed designs the
 * paper surveys: a static histogram that clamps the tail, or plain raw
 * collection.
 */

#ifndef TREADMILL_CORE_COLLECTOR_H_
#define TREADMILL_CORE_COLLECTOR_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "stats/histogram.h"
#include "stats/reservoir.h"
#include "util/rng.h"

namespace treadmill {
namespace core {

/** How a load tester aggregates its latency samples. */
enum class HistogramKind {
    Adaptive, ///< Treadmill: calibrated bounds + re-binning.
    Static,   ///< Pitfall: fixed bounds, tail clamps.
    Raw       ///< Keep every sample (reference / small runs).
};

/** Collection phases. */
enum class Phase { WarmUp, Calibration, Measurement, Done };

/** Phase-aware latency sample sink for one load-tester instance. */
class SampleCollector
{
  public:
    /** Sizing for each phase. */
    struct Params {
        std::uint64_t warmUpSamples = 500;
        std::uint64_t calibrationSamples = 500;
        std::uint64_t measurementSamples = 5000;
        HistogramKind histogram = HistogramKind::Adaptive;
        /** Bounds for the Static kind, microseconds. */
        double staticLo = 0.0;
        double staticHi = 1000.0;
        std::size_t staticBins = 1024;
        std::size_t reservoirCapacity = 20000;
        stats::AdaptiveHistogram::Params adaptive;
        /** Record a quantile-estimate trajectory every this many
         *  measurement samples (0 = off); used for the Fig 4
         *  convergence demonstration. */
        std::uint64_t trajectoryEvery = 0;
        double trajectoryQuantile = 0.99;
    };

    /**
     * @param params Phase sizing and aggregation kind.
     * @param rng Private stream for the reservoir.
     */
    SampleCollector(const Params &params, const Rng &rng);

    /** Record one latency sample (microseconds). */
    void add(double latencyUs);

    /** Current phase. */
    Phase phase() const { return currentPhase; }

    /** True once the measurement target has been reached. */
    bool done() const { return currentPhase == Phase::Done; }

    /** Measurement samples recorded so far. */
    std::uint64_t measured() const { return measuredCount; }

    /**
     * The q-quantile of the measurement distribution.
     * Requires at least one measurement sample.
     */
    double quantile(double q) const;

    /** Mean of the measurement distribution. */
    double mean() const;

    /** Raw measurement sub-sample (reservoir). */
    const std::vector<double> &rawSamples() const;

    /** The adaptive histogram (null unless kind == Adaptive). */
    const stats::AdaptiveHistogram *adaptiveHistogram() const;

    /** The static histogram (null unless kind == Static). */
    const stats::StaticHistogram *staticHistogram() const;

    /** (sample count, quantile estimate) pairs when trajectory
     *  recording is enabled. */
    const std::vector<std::pair<std::uint64_t, double>> &
    trajectory() const
    {
        return trajectoryPoints;
    }

  private:
    Params params;
    Phase currentPhase = Phase::WarmUp;
    std::uint64_t warmUpCount = 0;
    std::uint64_t measuredCount = 0;
    std::vector<double> calibration;
    std::unique_ptr<stats::AdaptiveHistogram> adaptive;
    std::unique_ptr<stats::StaticHistogram> staticHist;
    std::vector<double> raw;
    stats::ReservoirSampler reservoir;
    std::vector<std::pair<std::uint64_t, double>> trajectoryPoints;
};

} // namespace core
} // namespace treadmill

#endif // TREADMILL_CORE_COLLECTOR_H_
