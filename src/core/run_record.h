/**
 * @file
 * ExperimentResult -> store::RunRecord conversion.
 *
 * The run store is plain data below core in the layering DAG; this is
 * the one place simulator results become archive records. The
 * conversion is deterministic: the merged reservoir draws from an Rng
 * derived only from the run seed, quantile snapshots use the
 * per-instance aggregation (the paper's procedure), and the config
 * digest hashes a canonical rendering of every parameter that shapes
 * the run -- so identical (params, seed) produce byte-identical
 * archives.
 */

#ifndef TREADMILL_CORE_RUN_RECORD_H_
#define TREADMILL_CORE_RUN_RECORD_H_

#include <cstdint>
#include <vector>

#include "core/experiment.h"
#include "store/record.h"

namespace treadmill {
namespace core {

/** Controls for the conversion. */
struct RunRecordOptions {
    /** Taus snapshotted into the quantile columns (ascending). */
    std::vector<double> quantiles{0.5, 0.95, 0.99};
    /** Capacity of the merged run-level reservoir. */
    std::size_t reservoirCapacity = 20000;
    AggregationKind aggregation = AggregationKind::PerInstance;
};

/**
 * Stable 64-bit digest of everything that determines a run's
 * distribution *except* its seed: workload kind and rates, hardware
 * factor levels, collector sizing, cluster topology and policy,
 * resilience settings, and the fault plan's event schedule. Two
 * ExperimentParams with equal digests and equal seeds produce
 * identical runs.
 */
std::uint64_t configDigest(const ExperimentParams &params);

/**
 * Convert one finished experiment into an archive record.
 *
 * @p factorLevels is the study's canonical level vector for this run
 * (the store keeps levels; factor names live in the study manifest).
 * The caller attaches provenance rows separately when span tracing
 * was enabled (that analysis lives above core).
 */
store::RunRecord toRunRecord(const ExperimentParams &params,
                             const ExperimentResult &result,
                             std::vector<double> factorLevels,
                             const RunRecordOptions &options = {});

} // namespace core
} // namespace treadmill

#endif // TREADMILL_CORE_RUN_RECORD_H_
