/**
 * @file
 * Configurable workload characteristics (paper S III-A, "Configurable
 * workload"): the GET/SET mix, key popularity, and value sizes that a
 * load test drives, describable in a JSON file exactly as Treadmill's
 * workload configs are.
 */

#ifndef TREADMILL_CORE_WORKLOAD_H_
#define TREADMILL_CORE_WORKLOAD_H_

#include <array>
#include <cstdint>
#include <memory>
#include <string>

#include "server/request.h"
#include "util/json.h"
#include "util/random_variates.h"
#include "util/rng.h"

namespace treadmill {
namespace core {

/** Declarative description of the request stream. */
struct WorkloadConfig {
    /** Fraction of requests that are GETs (rest are SETs). */
    double getFraction = 0.95;
    /** Number of distinct keys; must be >= 1 (an empty key space
     *  cannot be sampled and is rejected by validate()). */
    std::uint64_t keySpace = 100000;
    /** Zipf skew over keys; 0 selects uniform popularity. Exactly 1.0
     *  is rejected: the Gray et al. O(1) sampler inverts the zeta tail
     *  via an exponent 1/(1-s), which is singular at s = 1. Use a
     *  nearby value (0.99 or 1.01) for near-harmonic popularity. */
    double zipfSkew = 0.99;
    /** Mean of the (lognormal) value-size distribution, bytes. */
    double valueBytesMean = 100.0;
    /** Standard deviation of value sizes, bytes (0 = fixed size). */
    double valueBytesSigma = 60.0;
    /** Protocol + header overhead added to each request packet. */
    std::uint32_t requestOverheadBytes = 80;

    /**
     * Parse from a JSON document, e.g.:
     * {"get_fraction": 0.95, "key_space": 100000, "zipf_skew": 0.99,
     *  "value_bytes": {"mean": 100, "sigma": 60},
     *  "request_overhead_bytes": 80}
     * Missing keys keep their defaults.
     *
     * @throws ConfigError on malformed or out-of-range values.
     */
    static WorkloadConfig fromJson(const json::Value &doc);

    /** Serialize back to the JSON schema fromJson() accepts. */
    json::Value toJson() const;

    /** Validate ranges; throws ConfigError when inconsistent. */
    void validate() const;
};

/** Draws concrete requests from a WorkloadConfig. */
class WorkloadGenerator
{
  public:
    /**
     * @param config Workload description (copied).
     * @param rng Private randomness stream for this generator.
     */
    WorkloadGenerator(const WorkloadConfig &config, const Rng &rng);

    /**
     * Populate @p request with op, key, sizes (everything except ids,
     * timestamps, and connection assignment).
     *
     * Draws are served from a precomputed batch (see refill()): the
     * per-request sequence of variates is identical to drawing them
     * one at a time, so results are bit-exact with the unbatched
     * generator; the batch only advances this generator's private
     * stream ahead of consumption.
     */
    void fill(server::Request &request);

    const WorkloadConfig &config() const { return cfg; }

  private:
    /** One precomputed request profile. */
    struct Drawn {
        std::uint64_t keyIdx;
        std::uint32_t valueBytes;
        bool isGet;
    };

    /** Draw the next kBatch profiles in per-request order. */
    void refill();

    WorkloadConfig cfg;
    Rng rng;
    Bernoulli isGet;
    std::unique_ptr<Zipf> zipf; ///< Null for uniform popularity.
    LogNormal valueSize;

    /** Batched variates: one virtual-call-free array walk per fill()
     *  instead of three sampler invocations per request. */
    static constexpr std::size_t kBatch = 64;
    std::array<Drawn, kBatch> batch;
    std::size_t batchPos = kBatch; ///< kBatch = batch exhausted.
};

} // namespace core
} // namespace treadmill

#endif // TREADMILL_CORE_WORKLOAD_H_
