/**
 * @file
 * Load-tester designs as data (paper Table I).
 *
 * A TesterSpec captures the design decisions that distinguish the
 * surveyed tools: control loop, client count, histogram discipline,
 * and cross-client aggregation. Presets reproduce Treadmill itself and
 * the behaviours of YCSB, Faban, CloudSuite, and Mutilate; feature
 * queries regenerate Table I programmatically.
 */

#ifndef TREADMILL_CORE_TESTER_SPEC_H_
#define TREADMILL_CORE_TESTER_SPEC_H_

#include <string>
#include <vector>

#include "core/collector.h"
#include "core/controller.h"

namespace treadmill {
namespace core {

/** How per-instance statistics are combined across clients. */
enum class AggregationKind {
    /** Treadmill: extract the metric per instance, then average. */
    PerInstance,
    /** Pitfall: merge all distributions, then extract the metric. */
    Holistic
};

/** One load-tester design point. */
struct TesterSpec {
    std::string name = "treadmill";
    ControlLoop loop = ControlLoop::OpenLoop;
    unsigned clientMachines = 8;
    /** Closed-loop connection slots per client machine. */
    unsigned connectionsPerClient = 8;
    /** Closed loop paces to the target rate (Mutilate's target-QPS
     *  mode) rather than saturating every slot. */
    bool rateLimitedClosedLoop = true;
    HistogramKind histogram = HistogramKind::Adaptive;
    AggregationKind aggregation = AggregationKind::PerInstance;
    /** Whether the tool's procedure repeats runs (hysteresis aware). */
    bool repeatsExperiments = true;
    /** Whether new workloads integrate in <200 LoC (generality). */
    bool general = true;
};

/** @name Table I presets
 * @{
 */
TesterSpec treadmillSpec();
TesterSpec mutilateSpec();
TesterSpec cloudSuiteSpec();
TesterSpec ycsbSpec();
TesterSpec fabanSpec();
/** @} */

/** All five surveyed testers in Table I column order. */
std::vector<TesterSpec> surveyedTesters();

/** @name Table I feature rows
 * Whether the design satisfies each of the paper's requirements.
 * @{
 */
bool hasProperInterArrival(const TesterSpec &spec);
bool hasProperAggregation(const TesterSpec &spec);
bool avoidsClientQueueingBias(const TesterSpec &spec);
bool handlesHysteresis(const TesterSpec &spec);
bool hasGenerality(const TesterSpec &spec);
/** @} */

} // namespace core
} // namespace treadmill

#endif // TREADMILL_CORE_TESTER_SPEC_H_
