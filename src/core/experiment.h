/**
 * @file
 * The tail-latency measurement procedure (paper S III-B).
 *
 * runExperiment() assembles one complete load test: a configured
 * server machine, a Memcached or mcrouter instance, a cluster of
 * client machines each running one load-tester instance, and the
 * tcpdump-equivalent ground-truth capture at the server NIC. The
 * result exposes per-instance statistics (extract-then-aggregate, the
 * correct procedure) alongside the holistic merge (the biased one),
 * plus the ground truth and a full latency decomposition.
 *
 * repeatedProcedure() implements the hysteresis-aware outer loop: the
 * same experiment is re-run with fresh run seeds (new placements)
 * until the mean of the per-run metrics converges.
 */

#ifndef TREADMILL_CORE_EXPERIMENT_H_
#define TREADMILL_CORE_EXPERIMENT_H_

#include <cstdint>
#include <map>
#include <vector>

#include "core/client.h"
#include "core/tester_spec.h"
#include "core/workload.h"
#include "exec/parallel_runner.h"
#include "fault/plan.h"
#include "hw/hardware_config.h"
#include "hw/machine_spec.h"
#include "lb/policy.h"
#include "obs/span.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "server/mcrouter.h"
#include "server/memcached.h"
#include "server/sqlish.h"
#include "stats/convergence.h"
#include "util/json.h"
#include "util/types.h"

namespace treadmill {
namespace core {

/** Which server the experiment drives. */
enum class WorkloadKind { Memcached, Mcrouter, Sqlish };

/**
 * Sharded multi-backend cluster behind the router (Mcrouter runs
 * only): the router forwards each routed request through a
 * lb::LoadBalancer onto `backends` Memcached shards, each with its own
 * hw::Machine and fabric links, instead of the modelled lognormal
 * backend delay.
 *
 * backends == 0 (the default) builds none of it: no extra machines,
 * links, metric names, or Rng draws, so a single-backend-era config
 * produces byte-identical output.
 */
struct ClusterParams {
    std::uint32_t backends = 0; ///< 0 = classic modelled-backend path.
    std::uint32_t replication = 1; ///< Replicas per key on the ring.
    /** Racks the backends spread across (contiguous blocks; rack 0
     *  also houses the router, others pay the cross-rack hop). */
    std::uint32_t racks = 1;
    /** Balancer saturation cap per backend; 0 = never queue. */
    std::uint32_t maxInflightPerBackend = 0;
    lb::PolicyKind policy = lb::PolicyKind::Fcfs;
    double edfSlackUs = 1000.0; ///< EDF deadline slack.
    std::uint32_t vnodesPerBackend = 64;
    double backendLinkGbps = 10.0; ///< Fabric link bandwidth.

    /** Rack of backend @p b under the contiguous-block layout. */
    std::uint32_t
    rackOf(std::uint32_t b) const
    {
        return racks <= 1 ? 0
                          : static_cast<std::uint32_t>(
                                (static_cast<std::uint64_t>(b) * racks) /
                                backends);
    }
};

/** Everything needed to run one load-test experiment. */
struct ExperimentParams {
    WorkloadKind kind = WorkloadKind::Memcached;
    WorkloadConfig workload;
    hw::MachineSpec machine;
    hw::HardwareConfig config;
    server::MemcachedParams memcachedParams;
    server::McrouterParams mcrouterParams;
    server::SqlishParams sqlishParams;
    TesterSpec tester; ///< Defaults to treadmillSpec().

    /**
     * Explicit total request rate; when 0, the rate is derived from
     * targetUtilization and the config's expected service time.
     */
    double requestsPerSecond = 0.0;
    double targetUtilization = 0.70;

    SampleCollector::Params collector;
    /** Connections each instance multiplexes over (open loop). */
    unsigned connectionsPerClientMux = 16;
    /** Place the first client on the remote rack (Fig 2 scenario). */
    bool oneRemoteRackClient = false;

    /** @name Client machine model (per instance)
     * @{
     */
    double clientSendCostUs = 1.0;
    double clientReceiveCostUs = 1.2;
    double clientKernelDelayUs = 30.0;
    /** @} */

    /**
     * Fault schedule for this run (empty by default). An empty plan
     * constructs no shim, injector, or events -- the run is
     * bit-identical to one on a build without the fault subsystem.
     */
    fault::FaultPlan faultPlan;

    /** Client failure handling, shared by every instance (off by
     *  default; see ResiliencePolicy for the zero-cost guarantee). */
    ResiliencePolicy resilience;

    /** Sharded backend tier behind the router (off by default; only
     *  meaningful for WorkloadKind::Mcrouter). */
    ClusterParams cluster;

    /** Run seed: placement identity (hysteresis) + all randomness. */
    std::uint64_t seed = 1;
    /** Simulated-time safety cap. */
    SimDuration deadline = seconds(60);

    /**
     * Request-lifecycle tracing (off by default). Sampling is by
     * completion order, deterministic and Rng-free, so enabling it
     * cannot perturb the run. The one knob drives both the flat
     * RequestTrace export and the per-attempt SpanTrace export.
     */
    obs::TraceConfig trace;

    /**
     * Deterministic sim-time telemetry (off by default): periodic
     * snapshots of per-backend gauges -- queue depths, inflight,
     * utilization, pool occupancy, event-queue depth -- sampled on the
     * simulated clock with read-only probes, so enabling it cannot
     * perturb the trajectory either.
     */
    obs::TelemetryConfig telemetry;

    ExperimentParams() { tester = treadmillSpec(); }
};

/** Per-instance view of an experiment. */
struct InstanceReport {
    std::vector<double> rawSamples; ///< Reservoir of measured latencies.
    std::map<double, double> quantiles; ///< From the instance collector.
    double cpuUtilization = 0.0;
    std::uint64_t measured = 0;
    bool reachedTarget = false;
    bool remoteRack = false;
    std::vector<std::uint64_t> outstandingAtSend;
    std::vector<std::pair<std::uint64_t, double>> trajectory;
};

/** Outcome of one experiment run. */
struct ExperimentResult {
    std::vector<InstanceReport> instances;
    /** Ground-truth server-residence latencies from the capture, us. */
    std::vector<double> groundTruthUs;

    double targetRps = 0.0;
    double achievedRps = 0.0;
    double serverUtilization = 0.0;
    std::uint64_t frequencyTransitions = 0;
    SimTime simulatedTime = 0;
    /** True when the simulated-time safety cap fired. */
    bool deadlineHit = false;

    /** @name PacketCapture diagnostics (tcpdump-analogue health)
     * @{
     */
    /** Responses at the server NIC with no matching request. */
    std::uint64_t captureUnmatchedResponses = 0;
    /** Requests still awaiting a response when the run ended. */
    std::size_t captureOutstanding = 0;
    /** @} */

    /** Sampled request timelines (empty unless params.trace.enabled). */
    std::vector<obs::RequestTrace> traces;

    /** Sampled per-attempt span trees (empty unless
     *  params.trace.enabled; same completion-order sampling). */
    std::vector<obs::SpanTrace> spans;

    /** Telemetry time series (empty unless params.telemetry.enabled). */
    obs::TelemetrySeries telemetry;

    /** Concrete fault windows the injector applied (one annotation per
     *  window; empty when the run had no fault plan). Pass these to
     *  chromeTraceJson() to overlay fault lanes on exported traces. */
    std::vector<obs::TraceAnnotation> faultWindows;

    /** Snapshot of the simulation's metrics registry at run end. */
    json::Value metrics;

    /** @name Cluster tier (empty/zero unless cluster.backends > 0)
     * @{
     */
    /** Requests served per backend shard. */
    std::vector<std::uint64_t> backendServed;
    /** Requests dispatched per backend shard by the balancer. */
    std::vector<std::uint64_t> backendDispatched;
    std::uint64_t lbQueued = 0;     ///< Parked in the dispatch queue.
    std::uint64_t lbUnroutable = 0; ///< Dropped: all replicas down.
    std::uint64_t lbFailovers = 0;  ///< Routed past a down primary.
    /** @} */

    /** @name Latency decomposition samples (Fig 3), microseconds
     * @{
     */
    std::vector<double> serverComponentUs;
    std::vector<double> networkComponentUs;
    std::vector<double> clientComponentUs;
    /** @} */

    /** @name Per-operation-type latencies (S II-B notes that request
     * types with distinct characteristics must not be merged blindly)
     * @{
     */
    std::vector<double> getLatencyUs;
    std::vector<double> setLatencyUs;
    /** @} */

    /**
     * The q-quantile aggregated across instances: PerInstance computes
     * each instance's quantile then averages (Treadmill's procedure);
     * Holistic merges every raw sample first (the biased baseline).
     */
    double aggregatedQuantile(double q, AggregationKind kind) const;

    /** All instances' raw samples merged (for CDFs and Fig 2). */
    std::vector<double> mergedSamples() const;

    /** Number of instances that reached their measurement target. */
    std::size_t instancesAtTarget() const;
};

/**
 * Translate the params' utilization target into a total request rate
 * for this config/seed (uses the expected service time at nominal
 * frequency).
 */
double deriveRequestRate(const ExperimentParams &params);

/** Run one complete experiment. */
ExperimentResult runExperiment(const ExperimentParams &params);

/**
 * Run many independent experiments, fanned across hardware threads.
 *
 * Seed-isolation invariant: runExperiment() builds every piece of
 * mutable state it touches -- Simulation, Machine, servers, cluster,
 * collectors, and all Rng streams -- from its own ExperimentParams, so
 * two runs never share mutable state and may execute concurrently.
 * Results are index-addressed (result[i] belongs to runs[i]), never
 * ordered by completion, so the output is bit-exact with the serial
 * loop for any Parallelism setting.
 *
 * @param runs        One ExperimentParams per experiment.
 * @param parallelism Worker knob (default hardware concurrency,
 *                    1 = legacy serial path).
 * @param progress    Optional observer; Progress::workUnits carries
 *                    simulated seconds, so throughput() is the
 *                    achieved sim-time rate.
 */
std::vector<ExperimentResult> runExperiments(
    const std::vector<ExperimentParams> &runs,
    const exec::Parallelism &parallelism = {},
    const exec::ProgressFn &progress = {});

/** Parameters of the hysteresis-aware repeated procedure. */
struct ProcedureParams {
    ExperimentParams base;
    double quantile = 0.99;
    AggregationKind aggregation = AggregationKind::PerInstance;
    std::size_t minRuns = 5;
    std::size_t maxRuns = 30;
    double tolerance = 0.02;
    std::size_t window = 3;
    /** Fan independent runs across threads; results are bit-exact
     *  with the serial path (see runExperiments()). */
    exec::Parallelism parallelism{};
};

/** Outcome of the repeated procedure. */
struct ProcedureResult {
    std::vector<double> perRunMetric; ///< One converged value per run.
    double mean = 0.0;
    double stddev = 0.0;
    std::size_t runs = 0;
    bool converged = false;
};

/**
 * Repeat the experiment with fresh run seeds until the running mean of
 * the per-run metric converges (or maxRuns is reached).
 */
ProcedureResult repeatedProcedure(const ProcedureParams &params);

} // namespace core
} // namespace treadmill

#endif // TREADMILL_CORE_EXPERIMENT_H_
