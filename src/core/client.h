/**
 * @file
 * A load-tester instance on its own client machine.
 *
 * Each instance owns a controller (open- or closed-loop), a workload
 * generator, a sample collector, and a model of the client machine's
 * CPU: send construction and response-callback processing occupy the
 * client CPU, so an overloaded client queues -- the client-side
 * queueing bias of paper S II-C. A fixed kernel interrupt-handling
 * delay sits between the client NIC and user code, producing the
 * constant offset the paper observes between tcpdump and load-tester
 * measurements (Figs 5-6).
 */

#ifndef TREADMILL_CORE_CLIENT_H_
#define TREADMILL_CORE_CLIENT_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/collector.h"
#include "core/controller.h"
#include "core/workload.h"
#include "obs/metrics.h"
#include "server/request.h"
#include "sim/simulation.h"
#include "util/rng.h"

namespace treadmill {
namespace core {

/** Configuration of one load-tester instance. */
struct ClientParams {
    std::size_t index = 0; ///< Instance number (also the seq-id space).
    /** Open-loop issue rate for this instance. */
    double requestsPerSecond = 10000.0;
    /** Connections this instance multiplexes requests over. */
    unsigned connections = 16;
    ControlLoop loop = ControlLoop::OpenLoop;
    /** Outstanding slots when loop == ClosedLoop. */
    unsigned closedLoopSlots = 8;
    /** Pace the closed loop at requestsPerSecond (Mutilate's
     *  target-QPS mode); false = saturating worker loop. */
    bool rateLimitedClosedLoop = true;
    /** Rate-limited closed loop sends at exactly 1/rate intervals
     *  (Mutilate's deterministic pacing, the inter-arrival pitfall)
     *  instead of exponential ones. */
    bool uniformClosedLoopSpacing = true;
    SampleCollector::Params collector;
    /** @name Client machine model
     * @{
     */
    double sendCostUs = 1.0;    ///< CPU time to build + send a request.
    double receiveCostUs = 1.2; ///< CPU time for the response callback.
    double kernelDelayUs = 30.0; ///< NIC-to-user interrupt handling.
    /** @} */
    std::uint64_t seed = 1;
};

/** One running load-tester instance. */
class LoadTesterInstance
{
  public:
    /** Hands a fully built request to the harness for transmission. */
    using TransmitFn = std::function<void(server::RequestPtr)>;

    /**
     * @param sim Owning simulation.
     * @param params Instance configuration.
     * @param workload Workload description.
     * @param transmit Called when a request leaves the client NIC.
     */
    LoadTesterInstance(sim::Simulation &sim, const ClientParams &params,
                       const WorkloadConfig &workload,
                       TransmitFn transmit);

    LoadTesterInstance(const LoadTesterInstance &) = delete;
    LoadTesterInstance &operator=(const LoadTesterInstance &) = delete;

    /** Begin generating load. */
    void start();

    /** Stop issuing new requests (in-flight ones still complete). */
    void stopLoad();

    /** The harness delivers a response packet arriving at this
     *  client's NIC. */
    void onResponseDelivered(server::RequestPtr request);

    /** @name Observers
     * @{
     */
    const SampleCollector &collector() const { return samples; }
    bool done() const { return samples.done(); }
    std::size_t outstanding() const { return outstandingCount; }
    std::uint64_t issued() const { return issuedCount; }
    std::uint64_t received() const { return receivedCount; }
    /** Outstanding-request count observed at each send instant
     *  (the Fig 1 distribution). */
    const std::vector<std::uint64_t> &outstandingAtSend() const
    {
        return outstandingSamples;
    }
    /** Busy fraction of the client CPU. */
    double cpuUtilization() const;
    const ClientParams &params() const { return cfg; }
    /** @} */

    /**
     * Install a hook invoked after each response has been fully
     * processed and sampled (used by the experiment harness for
     * latency decomposition and stop conditions).
     */
    void setCompletionHook(
        std::function<void(const server::RequestPtr &)> hook)
    {
        completionHook = std::move(hook);
    }

  private:
    /** Controller callback: build and send one request. */
    void issueRequest(SimTime intendedSend);

    sim::Simulation &sim;
    ClientParams cfg;
    WorkloadGenerator workload;
    TransmitFn transmit;
    std::unique_ptr<LoadController> controller;
    SampleCollector samples;
    Rng rng;

    SimTime cpuFreeAt = 0;
    SimDuration cpuBusy = 0;
    std::uint64_t nextSeq = 0;
    std::uint64_t nextConnection = 0;
    std::size_t outstandingCount = 0;
    std::uint64_t issuedCount = 0;
    std::uint64_t receivedCount = 0;
    std::vector<std::uint64_t> outstandingSamples;
    std::function<void(const server::RequestPtr &)> completionHook;

    /** @name Registry handles ("client<i>.*", resolved once)
     * @{
     */
    obs::Counter &issuedCounter;
    obs::Counter &receivedCounter;
    obs::Histogram &sendSlipHist;     ///< intendedSend -> clientSend, us.
    obs::Histogram &outstandingHist;  ///< Outstanding at each send.
    obs::Gauge &outstandingGauge;
    /** @} */
};

} // namespace core
} // namespace treadmill

#endif // TREADMILL_CORE_CLIENT_H_
