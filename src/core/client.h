/**
 * @file
 * A load-tester instance on its own client machine.
 *
 * Each instance owns a controller (open- or closed-loop), a workload
 * generator, a sample collector, and a model of the client machine's
 * CPU: send construction and response-callback processing occupy the
 * client CPU, so an overloaded client queues -- the client-side
 * queueing bias of paper S II-C. A fixed kernel interrupt-handling
 * delay sits between the client NIC and user code, producing the
 * constant offset the paper observes between tcpdump and load-tester
 * measurements (Figs 5-6).
 */

#ifndef TREADMILL_CORE_CLIENT_H_
#define TREADMILL_CORE_CLIENT_H_

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/collector.h"
#include "core/controller.h"
#include "core/workload.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "server/request.h"
#include "sim/simulation.h"
#include "util/rng.h"

namespace treadmill {
namespace core {

/**
 * Client-side failure handling: per-request timeout, capped-backoff
 * retry, and hedged (backup) requests.
 *
 * Latency discipline: all attempts of one logical request share the
 * original intendedSend stamp, so the recorded latency spans from the
 * instant the open-loop schedule meant to issue the request to the
 * first response -- retries and hedges make the tail *visible*, they
 * never reset the clock (paper S II's open-loop measurement rule).
 * Timed-out requests that exhaust their retries are counted as
 * failures, not recorded as fabricated latency samples.
 *
 * Disabled (the default), the client request path is byte-identical
 * to a build without this struct: no state, events, or Rng draws.
 */
struct ResiliencePolicy {
    bool enabled = false;

    /** Per-attempt timeout; 0 disables timeouts (and thus retries). */
    double timeoutUs = 0.0;

    /** @name Retry (after a timeout)
     * Retry k waits min(backoffCapUs, backoffBaseUs * 2^(k-1)),
     * scaled by a deterministic uniform jitter of +/-jitterFraction.
     * @{ */
    unsigned maxRetries = 0;
    double backoffBaseUs = 100.0;
    double backoffCapUs = 10000.0;
    double jitterFraction = 0.1;
    /** @} */

    /** @name Hedging
     * After hedgeDelayUs (or, when 0, the collector's running
     * hedgeQuantile estimate once hedgeMinSamples measurements exist)
     * without a response, send one backup copy; first answer wins.
     * hedgeDelayUs == 0 together with hedgeMinSamples == 0 is
     * rejected: the zero-sample quantile would fire the hedge at send
     * time, silently doubling offered load.
     * @{ */
    bool hedge = false;
    double hedgeDelayUs = 0.0;
    double hedgeQuantile = 0.95;
    std::uint64_t hedgeMinSamples = 50;
    /** @} */
};

/** Configuration of one load-tester instance. */
struct ClientParams {
    std::size_t index = 0; ///< Instance number (also the seq-id space).
    /** Open-loop issue rate for this instance. */
    double requestsPerSecond = 10000.0;
    /** Connections this instance multiplexes requests over. */
    unsigned connections = 16;
    ControlLoop loop = ControlLoop::OpenLoop;
    /** Outstanding slots when loop == ClosedLoop. */
    unsigned closedLoopSlots = 8;
    /** Pace the closed loop at requestsPerSecond (Mutilate's
     *  target-QPS mode); false = saturating worker loop. */
    bool rateLimitedClosedLoop = true;
    /** Rate-limited closed loop sends at exactly 1/rate intervals
     *  (Mutilate's deterministic pacing, the inter-arrival pitfall)
     *  instead of exponential ones. */
    bool uniformClosedLoopSpacing = true;
    SampleCollector::Params collector;
    /** @name Client machine model
     * @{
     */
    double sendCostUs = 1.0;    ///< CPU time to build + send a request.
    double receiveCostUs = 1.2; ///< CPU time for the response callback.
    double kernelDelayUs = 30.0; ///< NIC-to-user interrupt handling.
    /** @} */
    ResiliencePolicy resilience;
    /**
     * Build an obs::SpanTrace (the per-attempt tree) for every
     * completed logical request and hand it to the span sink. Off by
     * default: with it off the request path touches no span state at
     * all -- attempts are not retained and no stamps are copied.
     */
    bool recordSpans = false;
    std::uint64_t seed = 1;
};

/** One running load-tester instance. */
class LoadTesterInstance
{
  public:
    /** Hands a fully built request to the harness for transmission. */
    using TransmitFn = std::function<void(server::RequestPtr)>;

    /**
     * @param sim Owning simulation.
     * @param params Instance configuration.
     * @param workload Workload description.
     * @param transmit Called when a request leaves the client NIC.
     */
    LoadTesterInstance(sim::Simulation &sim, const ClientParams &params,
                       const WorkloadConfig &workload,
                       TransmitFn transmit);

    LoadTesterInstance(const LoadTesterInstance &) = delete;
    LoadTesterInstance &operator=(const LoadTesterInstance &) = delete;

    /** Begin generating load. */
    void start();

    /** Stop issuing new requests (in-flight ones still complete). */
    void stopLoad();

    /** The harness delivers a response packet arriving at this
     *  client's NIC. */
    void onResponseDelivered(server::RequestPtr request);

    /** @name Observers
     * @{
     */
    const SampleCollector &collector() const { return samples; }
    bool done() const { return samples.done(); }
    std::size_t outstanding() const { return outstandingCount; }
    std::uint64_t issued() const { return issuedCount; }
    std::uint64_t received() const { return receivedCount; }
    /** Attempts that hit their timeout. */
    std::uint64_t timeouts() const { return timeoutCount; }
    /** Extra wire attempts sent by the retry policy. */
    std::uint64_t retries() const { return retryCount; }
    /** Backup requests sent by the hedging policy. */
    std::uint64_t hedges() const { return hedgeCount; }
    /** Logical requests whose hedge answered first. */
    std::uint64_t hedgeWins() const { return hedgeWinCount; }
    /** Logical requests abandoned after exhausting retries. */
    std::uint64_t failed() const { return failedCount; }
    /** Responses that arrived after their logical request completed,
     *  failed, or the measurement window closed. */
    std::uint64_t lateResponses() const { return lateCount; }
    /** Outstanding-request count observed at each send instant
     *  (the Fig 1 distribution). */
    const std::vector<std::uint64_t> &outstandingAtSend() const
    {
        return outstandingSamples;
    }
    /** Busy fraction of the client CPU. */
    double cpuUtilization() const;
    /** Slabs the request arena carved so far (pool-occupancy probe). */
    std::size_t requestPoolSlabs() const
    {
        return requestPool.slabCount();
    }
    const ClientParams &params() const { return cfg; }
    /** @} */

    /**
     * Install a hook invoked after each response has been fully
     * processed and sampled (used by the experiment harness for
     * latency decomposition and stop conditions).
     */
    void setCompletionHook(
        std::function<void(const server::RequestPtr &)> hook)
    {
        completionHook = std::move(hook);
    }

    /**
     * Install the consumer of completed spans (typically
     * obs::SpanRecorder::record via the harness). Only invoked when
     * ClientParams::recordSpans is set; the SpanTrace argument is a
     * scratch object reused across calls -- copy it if retained.
     */
    void setSpanSink(std::function<void(const obs::SpanTrace &)> sink)
    {
        spanSink = std::move(sink);
    }

  private:
    /** Per-logical-request resilience state, keyed by logicalSeqId. */
    struct PendingState {
        server::Request proto;    ///< Template for retry/hedge clones.
        unsigned retriesLeft = 0;
        std::uint32_t attemptsSent = 1;
        bool hedgeSent = false;
        /** Retries are exhausted but a hedge attempt is still in
         *  flight; one final timeout window runs before the logical
         *  request is declared failed. */
        bool awaitingHedge = false;
        sim::EventId timeoutEvent = 0;
        sim::EventId hedgeEvent = 0;
        sim::EventId retryEvent = 0; ///< Backoff-delayed retry send.
        /** @name Attempt retention (recordSpans only)
         * Every wire attempt is held alive until the logical request
         * completes so its stamps survive into the SpanTrace (losing
         * attempts keep partial timelines). The pool recycles them
         * when the entry is erased. Empty when recordSpans is off.
         * @{ */
        std::array<server::RequestPtr, obs::kMaxSpanAttempts> held;
        std::uint32_t heldCount = 0;
        /** Index (into held) of the newest non-hedged attempt -- the
         *  one whose timeout fires next. */
        std::uint32_t lastPrimaryHeld = 0;
        /** @} */
    };

    /** Controller callback: build and send one request. */
    void issueRequest(SimTime intendedSend);

    /** Occupy the client CPU, then transmit @p request. */
    void transmitAttempt(server::RequestPtr request);

    /** Arm the timeout (and, for first attempts, the hedge timer). */
    void armAttempt(const server::RequestPtr &request);

    /** An attempt of @p logicalId hit its timeout. */
    void onTimeout(std::uint64_t logicalId);

    /** The backoff delay of @p logicalId elapsed: send the retry. */
    void onRetryTimer(std::uint64_t logicalId);

    /** The hedge timer of @p logicalId fired unanswered. */
    void onHedgeTimer(std::uint64_t logicalId);

    /** Clone the prototype of @p state into a new wire attempt. */
    server::RequestPtr cloneAttempt(PendingState &state, bool hedged);

    /**
     * Build the span of a completed logical request into spanScratch
     * and hand it to the sink. @p state may be null (resilience
     * disabled: the single @p winner attempt is the whole span).
     */
    void recordSpan(const PendingState *state,
                    const server::RequestPtr &winner);

    sim::Simulation &sim;
    ClientParams cfg;
    WorkloadGenerator workload;
    /** Recycles Request blocks across the instance's lifetime; issue
     *  and clone paths allocate nothing once the arena is warm. */
    server::RequestPool requestPool;
    TransmitFn transmit;
    std::unique_ptr<LoadController> controller;
    SampleCollector samples;
    Rng rng;
    Rng resilienceRng; ///< Backoff jitter; untouched when disabled.

    SimTime cpuFreeAt = 0;
    SimDuration cpuBusy = 0;
    std::uint64_t nextSeq = 0;
    std::uint64_t nextConnection = 0;
    std::size_t outstandingCount = 0;
    std::uint64_t issuedCount = 0;
    std::uint64_t receivedCount = 0;
    std::uint64_t timeoutCount = 0;
    std::uint64_t retryCount = 0;
    std::uint64_t hedgeCount = 0;
    std::uint64_t hedgeWinCount = 0;
    std::uint64_t failedCount = 0;
    std::uint64_t lateCount = 0;
    std::vector<std::uint64_t> outstandingSamples;
    std::function<void(const server::RequestPtr &)> completionHook;
    std::function<void(const obs::SpanTrace &)> spanSink;
    /** Reused span buffer: recordSpan fills it in place, so span
     *  emission allocates nothing on the hot path. */
    obs::SpanTrace spanScratch;
    /** Logical requests awaiting their first response (resilience
     *  enabled only; empty and untouched otherwise). */
    std::unordered_map<std::uint64_t, PendingState> pending;

    /** @name Registry handles ("client<i>.*", resolved once)
     * @{
     */
    obs::Counter &issuedCounter;
    obs::Counter &receivedCounter;
    obs::Counter &timeoutsCounter;
    obs::Counter &retriesCounter;
    obs::Counter &hedgesCounter;
    obs::Counter &hedgeWinsCounter;
    obs::Counter &failedCounter;
    obs::Counter &lateCounter;
    obs::Histogram &sendSlipHist;     ///< intendedSend -> clientSend, us.
    obs::Histogram &outstandingHist;  ///< Outstanding at each send.
    obs::Gauge &outstandingGauge;
    /** @} */
};

} // namespace core
} // namespace treadmill

#endif // TREADMILL_CORE_CLIENT_H_
