/**
 * @file
 * Load-generation control loops (paper S II-A).
 *
 * The open-loop controller issues requests at precisely timed,
 * exponentially distributed inter-arrival instants, independent of
 * outstanding responses -- Treadmill's design, consistent with Google
 * production inter-arrival measurements. The closed-loop controller
 * holds N connection slots and issues a new request only when a slot's
 * previous response returns -- the worker-thread pattern of YCSB,
 * Faban, and Mutilate, which caps outstanding requests at N and
 * systematically underestimates tail latency.
 */

#ifndef TREADMILL_CORE_CONTROLLER_H_
#define TREADMILL_CORE_CONTROLLER_H_

#include <array>
#include <cstdint>
#include <functional>
#include <memory>

#include "sim/simulation.h"
#include "util/random_variates.h"
#include "util/rng.h"
#include "util/types.h"

namespace treadmill {
namespace core {

/** The two inter-arrival generation disciplines. */
enum class ControlLoop { OpenLoop, ClosedLoop };

/**
 * Strategy deciding when the load tester issues requests.
 *
 * The owning client supplies an `issue` callback that constructs and
 * transmits one request stamped with the given intended-send time.
 */
class LoadController
{
  public:
    using IssueFn = std::function<void(SimTime intendedSend)>;

    virtual ~LoadController() = default;

    /** Begin generating load (schedules the first sends). */
    virtual void start(IssueFn issue) = 0;

    /** A response to one of this controller's requests arrived. */
    virtual void onResponse() = 0;

    /** Stop issuing further requests. */
    virtual void stop() = 0;

    /** Which discipline this controller implements. */
    virtual ControlLoop kind() const = 0;
};

/**
 * Precisely timed open-loop controller with exponential inter-arrival
 * times at the configured rate.
 */
class OpenLoopController : public LoadController
{
  public:
    /**
     * @param sim Owning simulation.
     * @param requestsPerSecond Target issue rate.
     * @param rng Private randomness for inter-arrival draws.
     */
    OpenLoopController(sim::Simulation &sim, double requestsPerSecond,
                       const Rng &rng);

    void start(IssueFn issue) override;
    void onResponse() override {}
    void stop() override { running = false; }
    ControlLoop kind() const override { return ControlLoop::OpenLoop; }

  private:
    /** Schedule the next precisely timed send. */
    void scheduleNext();

    sim::Simulation &sim;
    Exponential interArrival;
    Rng rng;
    IssueFn issue;
    SimTime nextSend = 0;
    bool running = false;

    /** Batched exponential gaps: the rng is private, so drawing a
     *  chunk ahead yields the same per-send sequence as one virtual
     *  sampler call per request, minus the call overhead. */
    static constexpr std::size_t kGapBatch = 64;
    std::array<double, kGapBatch> gaps;
    std::size_t gapPos = kGapBatch; ///< kGapBatch = batch exhausted.
};

/**
 * Closed-loop controller: at most one outstanding request per
 * connection slot.
 *
 * Two operating modes, both used by the surveyed tools:
 *  - Saturating (targetRps == 0): every slot reissues immediately on
 *    response (optionally after a think time) -- the classic worker-
 *    thread loop.
 *  - Rate-limited (targetRps > 0): sends are scheduled at exponential
 *    instants like an open loop, but a send finding every slot busy
 *    waits for a response first. This is Mutilate's target-QPS mode;
 *    the cap on outstanding requests is exactly what clips the
 *    queueing tail (paper Figs 1 and 6).
 */
class ClosedLoopController : public LoadController
{
  public:
    /**
     * @param sim Owning simulation.
     * @param connections Number of concurrent connection slots.
     * @param thinkTime Delay between a response and the next request
     *        on that slot (saturating mode only).
     * @param targetRps Rate-limited mode when positive.
     * @param rng Inter-arrival randomness (rate-limited mode).
     * @param uniformSpacing Rate-limited sends at exactly 1/rate
     *        intervals (Mutilate's pacing) instead of exponential
     *        ones -- the "improper inter-arrival" pitfall.
     */
    ClosedLoopController(sim::Simulation &sim, unsigned connections,
                         SimDuration thinkTime = 0,
                         double targetRps = 0.0, const Rng &rng = Rng(1),
                         bool uniformSpacing = true);

    void start(IssueFn issue) override;
    void onResponse() override;
    void stop() override { running = false; }
    ControlLoop kind() const override { return ControlLoop::ClosedLoop; }

    unsigned connections() const { return slots; }

    /** Sends deferred because every slot was busy (diagnostics). */
    std::uint64_t deferredSends() const { return deferred; }

  private:
    /** Issue one request now (or after think time). */
    void reissue();

    /** Rate-limited mode: schedule the next timed send. */
    void scheduleNext();

    /** Rate-limited mode: attempt a timed send (defer if capped). */
    void timedSend();

    sim::Simulation &sim;
    unsigned slots;
    SimDuration thinkTime;
    double targetRps;
    Rng rng;
    bool uniformSpacing;
    IssueFn issue;
    bool running = false;
    unsigned outstanding = 0;
    std::uint64_t pendingSends = 0;
    std::uint64_t deferred = 0;
    SimTime nextSend = 0;
};

/**
 * Estimate the connection count a closed-loop tester needs to sustain
 * @p requestsPerSecond against a service whose mean response time is
 * @p meanResponseSeconds (Little's law, rounded up).
 */
unsigned closedLoopConnectionsFor(double requestsPerSecond,
                                  double meanResponseSeconds);

} // namespace core
} // namespace treadmill

#endif // TREADMILL_CORE_CONTROLLER_H_
