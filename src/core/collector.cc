#include "core/collector.h"

#include <algorithm>

#include "stats/summary.h"
#include "util/error.h"
#include "util/logging.h"

namespace treadmill {
namespace core {

SampleCollector::SampleCollector(const Params &params_, const Rng &rng)
    : params(params_),
      reservoir(params_.reservoirCapacity, rng)
{
    if (params.measurementSamples == 0)
        throw ConfigError("measurement phase needs at least one sample");
    if (params.histogram == HistogramKind::Static) {
        staticHist = std::make_unique<stats::StaticHistogram>(
            params.staticLo, params.staticHi, params.staticBins);
        currentPhase = params.warmUpSamples == 0 ? Phase::Measurement
                                                 : Phase::WarmUp;
    } else if (params.histogram == HistogramKind::Raw) {
        raw.reserve(params.measurementSamples);
        currentPhase = params.warmUpSamples == 0 ? Phase::Measurement
                                                 : Phase::WarmUp;
    } else {
        calibration.reserve(params.calibrationSamples);
        currentPhase = params.warmUpSamples == 0 ? Phase::Calibration
                                                 : Phase::WarmUp;
    }
}

void
SampleCollector::add(double latencyUs)
{
    switch (currentPhase) {
      case Phase::WarmUp:
        if (++warmUpCount >= params.warmUpSamples) {
            currentPhase = params.histogram == HistogramKind::Adaptive
                               ? Phase::Calibration
                               : Phase::Measurement;
        }
        return;

      case Phase::Calibration:
        calibration.push_back(latencyUs);
        if (calibration.size() >= params.calibrationSamples) {
            // tmlint:allow-next-line(hot-path-transitive): one-shot calibration->measurement transition, not steady state
            adaptive = std::make_unique<stats::AdaptiveHistogram>(
                calibration, params.adaptive);
            // Calibration samples seed the histogram but do not count
            // toward the measurement target.
            calibration.clear();
            calibration.shrink_to_fit();
            currentPhase = Phase::Measurement;
        }
        return;

      case Phase::Measurement:
        switch (params.histogram) {
          case HistogramKind::Adaptive:
            adaptive->add(latencyUs);
            break;
          case HistogramKind::Static:
            staticHist->add(latencyUs);
            break;
          case HistogramKind::Raw:
            raw.push_back(latencyUs);
            break;
        }
        reservoir.add(latencyUs);
        ++measuredCount;
        if (params.trajectoryEvery != 0 &&
            measuredCount % params.trajectoryEvery == 0) {
            trajectoryPoints.emplace_back(
                measuredCount, quantile(params.trajectoryQuantile));
        }
        if (measuredCount >= params.measurementSamples)
            currentPhase = Phase::Done;
        return;

      case Phase::Done:
        // Late responses after the target are ignored.
        return;
    }
}

double
SampleCollector::quantile(double q) const
{
    switch (params.histogram) {
      case HistogramKind::Adaptive:
        if (!adaptive || adaptive->count() == 0)
            // tmlint:allow-next-line(hot-path-transitive): guards a misconfigured run before any sample exists, never taken per-request
            throw NumericalError("no measurement samples collected");
        return adaptive->quantile(q);
      case HistogramKind::Static:
        return staticHist->quantile(q);
      case HistogramKind::Raw:
        return stats::quantile(raw, q);
    }
    panic("unreachable histogram kind");
}

double
SampleCollector::mean() const
{
    switch (params.histogram) {
      case HistogramKind::Adaptive:
        return adaptive ? adaptive->mean() : 0.0;
      case HistogramKind::Static:
        return stats::mean(rawSamples());
      case HistogramKind::Raw:
        return stats::mean(raw);
    }
    panic("unreachable histogram kind");
}

const std::vector<double> &
SampleCollector::rawSamples() const
{
    return reservoir.samples();
}

const stats::AdaptiveHistogram *
SampleCollector::adaptiveHistogram() const
{
    return adaptive.get();
}

const stats::StaticHistogram *
SampleCollector::staticHistogram() const
{
    return staticHist.get();
}

} // namespace core
} // namespace treadmill
