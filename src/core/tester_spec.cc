#include "core/tester_spec.h"

namespace treadmill {
namespace core {

TesterSpec
treadmillSpec()
{
    TesterSpec spec;
    spec.name = "Treadmill";
    spec.loop = ControlLoop::OpenLoop;
    spec.clientMachines = 8;
    spec.histogram = HistogramKind::Adaptive;
    spec.aggregation = AggregationKind::PerInstance;
    spec.repeatsExperiments = true;
    spec.general = true;
    return spec;
}

TesterSpec
mutilateSpec()
{
    TesterSpec spec;
    spec.name = "Mutilate";
    spec.loop = ControlLoop::ClosedLoop;
    spec.clientMachines = 8; // 8 agents + 1 master in the paper setup
    spec.connectionsPerClient = 8;
    spec.histogram = HistogramKind::Raw;
    spec.aggregation = AggregationKind::Holistic;
    spec.repeatsExperiments = false;
    spec.general = true;
    return spec;
}

TesterSpec
cloudSuiteSpec()
{
    TesterSpec spec;
    spec.name = "CloudSuite";
    spec.loop = ControlLoop::ClosedLoop;
    spec.clientMachines = 1; // single load-generator machine
    spec.connectionsPerClient = 64;
    spec.histogram = HistogramKind::Static;
    spec.aggregation = AggregationKind::Holistic;
    spec.repeatsExperiments = false;
    spec.general = false;
    return spec;
}

TesterSpec
ycsbSpec()
{
    TesterSpec spec;
    spec.name = "YCSB";
    spec.loop = ControlLoop::ClosedLoop;
    spec.clientMachines = 1;
    spec.connectionsPerClient = 32; // worker threads
    spec.histogram = HistogramKind::Static;
    spec.aggregation = AggregationKind::Holistic;
    spec.repeatsExperiments = false;
    spec.general = true;
    return spec;
}

TesterSpec
fabanSpec()
{
    TesterSpec spec;
    spec.name = "Faban";
    spec.loop = ControlLoop::ClosedLoop;
    spec.clientMachines = 4;
    spec.connectionsPerClient = 16;
    spec.histogram = HistogramKind::Static;
    spec.aggregation = AggregationKind::Holistic;
    spec.repeatsExperiments = false;
    spec.general = true;
    return spec;
}

std::vector<TesterSpec>
surveyedTesters()
{
    return {ycsbSpec(), fabanSpec(), cloudSuiteSpec(), mutilateSpec(),
            treadmillSpec()};
}

bool
hasProperInterArrival(const TesterSpec &spec)
{
    return spec.loop == ControlLoop::OpenLoop;
}

bool
hasProperAggregation(const TesterSpec &spec)
{
    return spec.histogram == HistogramKind::Adaptive &&
           spec.aggregation == AggregationKind::PerInstance;
}

bool
avoidsClientQueueingBias(const TesterSpec &spec)
{
    return spec.clientMachines > 1;
}

bool
handlesHysteresis(const TesterSpec &spec)
{
    return spec.repeatsExperiments;
}

bool
hasGenerality(const TesterSpec &spec)
{
    return spec.general;
}

} // namespace core
} // namespace treadmill
