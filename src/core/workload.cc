#include "core/workload.h"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstring>

#include "util/error.h"

namespace treadmill {
namespace core {

WorkloadConfig
WorkloadConfig::fromJson(const json::Value &doc)
{
    WorkloadConfig cfg;
    cfg.getFraction = doc.numberOr("get_fraction", cfg.getFraction);
    cfg.keySpace = static_cast<std::uint64_t>(
        doc.intOr("key_space", static_cast<std::int64_t>(cfg.keySpace)));
    cfg.zipfSkew = doc.numberOr("zipf_skew", cfg.zipfSkew);
    if (doc.contains("value_bytes")) {
        const json::Value &vb = doc.at("value_bytes");
        cfg.valueBytesMean = vb.numberOr("mean", cfg.valueBytesMean);
        cfg.valueBytesSigma = vb.numberOr("sigma", cfg.valueBytesSigma);
    }
    cfg.requestOverheadBytes = static_cast<std::uint32_t>(doc.intOr(
        "request_overhead_bytes",
        static_cast<std::int64_t>(cfg.requestOverheadBytes)));
    cfg.validate();
    return cfg;
}

json::Value
WorkloadConfig::toJson() const
{
    json::Object vb;
    vb["mean"] = json::Value(valueBytesMean);
    vb["sigma"] = json::Value(valueBytesSigma);

    json::Object doc;
    doc["get_fraction"] = json::Value(getFraction);
    doc["key_space"] =
        json::Value(static_cast<std::int64_t>(keySpace));
    doc["zipf_skew"] = json::Value(zipfSkew);
    doc["value_bytes"] = json::Value(std::move(vb));
    doc["request_overhead_bytes"] =
        json::Value(static_cast<std::int64_t>(requestOverheadBytes));
    return json::Value(std::move(doc));
}

void
WorkloadConfig::validate() const
{
    if (getFraction < 0.0 || getFraction > 1.0)
        throw ConfigError("get_fraction must lie in [0, 1]");
    if (keySpace == 0)
        throw ConfigError(
            "key_space must be >= 1: an empty key space leaves the "
            "generator nothing to sample");
    if (zipfSkew < 0.0)
        throw ConfigError("zipf_skew must be >= 0 (0 = uniform)");
    if (zipfSkew == 1.0)
        throw ConfigError(
            "zipf_skew must not be exactly 1: the Gray et al. O(1) "
            "sampler's exponent 1/(1-s) is singular there; use 0.99 "
            "or 1.01 instead");
    if (!(valueBytesMean > 0.0))
        throw ConfigError("value_bytes.mean must be positive");
    if (valueBytesSigma < 0.0)
        throw ConfigError("value_bytes.sigma must be non-negative");
}

WorkloadGenerator::WorkloadGenerator(const WorkloadConfig &config,
                                     const Rng &rng_)
    : cfg(config), rng(rng_), isGet(config.getFraction),
      valueSize(config.valueBytesSigma > 0.0
                    ? LogNormal::fromMoments(config.valueBytesMean,
                                             config.valueBytesSigma)
                    : LogNormal(std::log(config.valueBytesMean), 0.0))
{
    cfg.validate();
    if (cfg.zipfSkew > 0.0)
        zipf = std::make_unique<Zipf>(cfg.keySpace, cfg.zipfSkew);
}

void
WorkloadGenerator::refill()
{
    // Per profile, draw in exactly the order fill() used to: op, key,
    // value size. The stream is private to this generator, so pulling
    // a chunk ahead of time yields bit-identical per-request variates.
    for (Drawn &d : batch) {
        d.isGet = isGet.sample(rng);
        d.keyIdx = zipf ? zipf->sample(rng) : rng.nextBelow(cfg.keySpace);
        d.valueBytes = static_cast<std::uint32_t>(
            std::clamp(valueSize.sample(rng), 1.0, 64.0 * 1024.0));
    }
    batchPos = 0;
}

void
WorkloadGenerator::fill(server::Request &request)
{
    if (batchPos == kBatch)
        refill();
    const Drawn &d = batch[batchPos++];

    request.op = d.isGet ? server::OpType::Get : server::OpType::Set;
    // Format "key:<n>" into a stack buffer: same bytes strprintf
    // produced, without the vsnprintf pass or its temporary string.
    // Keys for any key space up to ~10^11 fit std::string's inline
    // buffer, so the assignment does not allocate either.
    char buf[4 + 20];
    std::memcpy(buf, "key:", 4);
    const auto end =
        std::to_chars(buf + 4, buf + sizeof(buf), d.keyIdx);
    request.key.assign(buf, end.ptr);
    request.valueBytes = d.valueBytes;
    request.requestBytes =
        cfg.requestOverheadBytes +
        static_cast<std::uint32_t>(request.key.size()) +
        (request.op == server::OpType::Set ? request.valueBytes : 0);
}

} // namespace core
} // namespace treadmill
