#include "stats/summary.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"
#include "util/logging.h"

namespace treadmill {
namespace stats {

void
Summary::add(double x)
{
    if (n == 0) {
        lo = x;
        hi = x;
    } else {
        lo = std::min(lo, x);
        hi = std::max(hi, x);
    }
    ++n;
    total += x;
    const double delta = x - meanAcc;
    meanAcc += delta / static_cast<double>(n);
    m2 += delta * (x - meanAcc);
}

void
Summary::merge(const Summary &other)
{
    if (other.n == 0)
        return;
    if (n == 0) {
        *this = other;
        return;
    }
    const double na = static_cast<double>(n);
    const double nb = static_cast<double>(other.n);
    const double delta = other.meanAcc - meanAcc;
    const double combined = na + nb;
    meanAcc += delta * nb / combined;
    m2 += other.m2 + delta * delta * na * nb / combined;
    n += other.n;
    total += other.total;
    lo = std::min(lo, other.lo);
    hi = std::max(hi, other.hi);
}

double
Summary::mean() const
{
    return n == 0 ? 0.0 : meanAcc;
}

double
Summary::variance() const
{
    return n < 2 ? 0.0 : m2 / static_cast<double>(n - 1);
}

double
Summary::stddev() const
{
    return std::sqrt(variance());
}

double
Summary::min() const
{
    return n == 0 ? 0.0 : lo;
}

double
Summary::max() const
{
    return n == 0 ? 0.0 : hi;
}

double
quantileSorted(const std::vector<double> &sorted, double q)
{
    if (sorted.empty())
        throw NumericalError("quantile of an empty sample");
    if (!(q >= 0.0 && q <= 1.0))
        throw NumericalError("quantile order must lie in [0, 1]");
    if (sorted.size() == 1)
        return sorted.front();
    // R type-7: h = (n-1) q; interpolate between floor(h) and floor(h)+1.
    const double h = static_cast<double>(sorted.size() - 1) * q;
    const auto lo = static_cast<std::size_t>(h);
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = h - static_cast<double>(lo);
    return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double
quantile(std::vector<double> samples, double q)
{
    std::sort(samples.begin(), samples.end());
    return quantileSorted(samples, q);
}

double
mean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double total = 0.0;
    for (double x : xs)
        total += x;
    return total / static_cast<double>(xs.size());
}

double
median(std::vector<double> xs)
{
    if (xs.empty())
        return 0.0;
    std::sort(xs.begin(), xs.end());
    return quantileSorted(xs, 0.5);
}

double
stddev(const std::vector<double> &xs)
{
    if (xs.size() < 2)
        return 0.0;
    const double m = mean(xs);
    double m2 = 0.0;
    for (double x : xs)
        m2 += (x - m) * (x - m);
    return std::sqrt(m2 / static_cast<double>(xs.size() - 1));
}

} // namespace stats
} // namespace treadmill
