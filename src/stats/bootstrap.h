/**
 * @file
 * Nonparametric bootstrap resampling.
 *
 * Used by the regression layer to obtain standard errors and confidence
 * intervals for quantile-regression coefficients (the paper reports
 * Std. Err at 95% confidence in Table IV).
 */

#ifndef TREADMILL_STATS_BOOTSTRAP_H_
#define TREADMILL_STATS_BOOTSTRAP_H_

#include <functional>
#include <vector>

#include "util/rng.h"

namespace treadmill {
namespace stats {

/** Result of a bootstrap run for a scalar statistic. */
struct BootstrapResult {
    double estimate = 0.0;    ///< Statistic on the original sample.
    double standardError = 0.0;
    double ciLow = 0.0;       ///< Percentile CI lower bound.
    double ciHigh = 0.0;      ///< Percentile CI upper bound.
    std::vector<double> replicates; ///< Statistic per resample.
};

/**
 * Bootstrap a scalar statistic of a univariate sample.
 *
 * @param sample Original observations.
 * @param statistic Function mapping a sample to the statistic of interest.
 * @param replicates Number of bootstrap resamples.
 * @param rng Randomness source.
 * @param confidence Two-sided confidence level for the percentile CI.
 */
BootstrapResult
bootstrap(const std::vector<double> &sample,
          const std::function<double(const std::vector<double> &)>
              &statistic,
          std::size_t replicates, Rng &rng, double confidence = 0.95);

/**
 * Bootstrap over row indices (for regression-style statistics where the
 * sample is a set of (X row, y) pairs addressed by index).
 *
 * @param sampleSize Number of rows in the original sample.
 * @param statistic Maps a multiset of row indices to the statistic.
 */
BootstrapResult
bootstrapIndexed(std::size_t sampleSize,
                 const std::function<double(
                     const std::vector<std::size_t> &)> &statistic,
                 std::size_t replicates, Rng &rng,
                 double confidence = 0.95);

} // namespace stats
} // namespace treadmill

#endif // TREADMILL_STATS_BOOTSTRAP_H_
