/**
 * @file
 * Convergence detection for the repeated-experiment procedure.
 *
 * The paper's measurement procedure repeats the whole experiment until
 * "the mean of the collected measurements has already converged"
 * (S III-B). ConvergenceTracker watches the running mean and reports
 * convergence once its relative movement over a window stays below a
 * tolerance.
 */

#ifndef TREADMILL_STATS_CONVERGENCE_H_
#define TREADMILL_STATS_CONVERGENCE_H_

#include <cstddef>
#include <vector>

namespace treadmill {
namespace stats {

/** Watches a stream of per-run measurements for running-mean stability. */
class ConvergenceTracker
{
  public:
    /**
     * @param relativeTolerance Max relative change of the running mean
     *        across the window for convergence.
     * @param window Number of consecutive stable updates required.
     * @param minRuns Never report convergence before this many runs.
     */
    ConvergenceTracker(double relativeTolerance = 0.02,
                       std::size_t window = 3, std::size_t minRuns = 5);

    /** Record one per-run measurement. */
    void add(double value);

    /** True once the running mean has stabilized. */
    bool converged() const;

    /** Running mean of all measurements so far. */
    double runningMean() const;

    /** Number of measurements recorded. */
    std::size_t count() const { return values.size(); }

    /** All recorded measurements. */
    const std::vector<double> &measurements() const { return values; }

  private:
    double tolerance;
    std::size_t window;
    std::size_t minRuns;
    std::vector<double> values;
    std::vector<double> meanHistory;
};

} // namespace stats
} // namespace treadmill

#endif // TREADMILL_STATS_CONVERGENCE_H_
