#include "stats/histogram.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"
#include "util/logging.h"

namespace treadmill {
namespace stats {

namespace {

constexpr double kMinWidth = 1e-9;

} // namespace

AdaptiveHistogram::AdaptiveHistogram(const std::vector<double> &calibration,
                                     const Params &params_)
    : params(params_)
{
    if (calibration.empty())
        throw NumericalError("adaptive histogram needs calibration samples");
    if (params.binCount < 2)
        throw ConfigError("adaptive histogram needs at least 2 bins");
    const auto [minIt, maxIt] =
        std::minmax_element(calibration.begin(), calibration.end());
    lo = std::max(0.0, *minIt * 0.5);
    const double span =
        std::max(kMinWidth, (*maxIt - lo) * params.calibrationHeadroom);
    width = span / static_cast<double>(params.binCount);
    hi = lo + width * static_cast<double>(params.binCount);
    bins.assign(params.binCount, 0);
    // The parked-overflow buffer holds at most overflowTrigger values
    // before widenToInclude/absorbOverflow drain it, so one up-front
    // reservation covers every widen/merge cycle for the histogram's
    // lifetime -- push_back never reallocates.
    overflowPending.reserve(params.overflowTrigger);
    for (double x : calibration)
        add(x);
}

AdaptiveHistogram::AdaptiveHistogram(double lo_, double hi_,
                                     const Params &params_)
    : params(params_), lo(lo_)
{
    if (params.binCount < 2)
        throw ConfigError("adaptive histogram needs at least 2 bins");
    if (!(hi_ > lo_))
        throw ConfigError("adaptive histogram requires hi > lo");
    width = (hi_ - lo_) / static_cast<double>(params.binCount);
    hi = lo + width * static_cast<double>(params.binCount);
    bins.assign(params.binCount, 0);
    overflowPending.reserve(params.overflowTrigger);
}

// tmlint:hot-path-begin -- the out-of-line half of add(): rare per
// sample, but still inside the measurement loop.
void
AdaptiveHistogram::addSlow(double x)
{
    if (x < lo) {
        // Below-range samples are rare by construction (the calibration
        // lower bound is half the observed minimum); clamp into bin 0.
        ++underflow;
        ++bins[0];
        return;
    }
    if (x >= hi) {
        overflowPending.push_back(x);
        if (overflowPending.size() >= params.overflowTrigger) {
            widenToInclude(
                *std::max_element(overflowPending.begin(),
                                  overflowPending.end()));
            absorbOverflow();
        }
        return;
    }
    // Unordered comparisons (NaN) reach here; keep the historical
    // clamp-into-range behaviour.
    const auto idx = static_cast<std::size_t>((x - lo) / width);
    ++bins[std::min(idx, bins.size() - 1)];
}

void
AdaptiveHistogram::widenToInclude(double x)
{
    while (x >= hi) {
        // Double the bin width: merge adjacent bin pairs exactly.
        const std::size_t half = bins.size() / 2;
        for (std::size_t i = 0; i < half; ++i)
            bins[i] = bins[2 * i] + bins[2 * i + 1];
        if (bins.size() % 2 == 1)
            bins[half] = bins.back();
        std::fill(bins.begin() + static_cast<std::ptrdiff_t>(half) +
                      (bins.size() % 2 == 1 ? 1 : 0),
                  bins.end(), 0);
        width *= 2.0;
        hi = lo + width * static_cast<double>(bins.size());
        ++rebins;
    }
}

void
AdaptiveHistogram::absorbOverflow()
{
    for (double x : overflowPending) {
        TM_ASSERT(x < hi, "overflow sample still out of range after widen");
        const auto idx = static_cast<std::size_t>((x - lo) / width);
        ++bins[std::min(idx, bins.size() - 1)];
    }
    overflowPending.clear();
}
// tmlint:hot-path-end

double
AdaptiveHistogram::quantile(double q) const
{
    if (total == 0)
        throw NumericalError("quantile of an empty histogram");
    if (!(q >= 0.0 && q <= 1.0))
        throw NumericalError("quantile order must lie in [0, 1]");

    // Target the ceil(q * N)-th smallest sample (1-based), matching the
    // empirical quantile definition used at high tails.
    const double target =
        std::max(1.0, std::ceil(q * static_cast<double>(total)));

    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < bins.size(); ++i) {
        const std::uint64_t mass = bins[i];
        if (static_cast<double>(cum + mass) >= target && mass > 0) {
            // Linear interpolation inside the bin.
            const double within =
                (target - static_cast<double>(cum)) /
                static_cast<double>(mass);
            return lo + (static_cast<double>(i) + within) * width;
        }
        cum += mass;
    }

    // The target rank falls in the (not yet absorbed) overflow region.
    std::vector<double> pending = overflowPending;
    std::sort(pending.begin(), pending.end());
    const auto rank = static_cast<std::size_t>(target) - cum;
    TM_ASSERT(rank >= 1 && rank <= pending.size(),
              "histogram quantile rank out of range");
    return pending[rank - 1];
}

double
AdaptiveHistogram::cdf(double x) const
{
    if (total == 0)
        return 0.0;
    std::uint64_t below = 0;
    if (x >= hi) {
        for (std::uint64_t mass : bins)
            below += mass;
    } else if (x > lo) {
        const double pos = (x - lo) / width;
        const auto full = static_cast<std::size_t>(pos);
        for (std::size_t i = 0; i < full && i < bins.size(); ++i)
            below += bins[i];
        if (full < bins.size()) {
            const double frac = pos - static_cast<double>(full);
            below += static_cast<std::uint64_t>(
                frac * static_cast<double>(bins[full]));
        }
    }
    for (double v : overflowPending) {
        if (v <= x)
            ++below;
    }
    return static_cast<double>(below) / static_cast<double>(total);
}

double
AdaptiveHistogram::mean() const
{
    if (total == 0)
        return 0.0;
    double sum = 0.0;
    for (std::size_t i = 0; i < bins.size(); ++i) {
        const double mid = lo + (static_cast<double>(i) + 0.5) * width;
        sum += mid * static_cast<double>(bins[i]);
    }
    for (double v : overflowPending)
        sum += v;
    return sum / static_cast<double>(total);
}

void
AdaptiveHistogram::merge(const AdaptiveHistogram &other)
{
    // Each of other's bins lands at its midpoint, as one bulk mass
    // addition. Widening happens at most once, up front, so no
    // overflow batch accumulates mid-merge and re-bins are never
    // triggered by replayed mass.
    double highestMid = lo;
    bool anyMass = false;
    for (std::size_t i = 0; i < other.bins.size(); ++i) {
        if (other.bins[i] == 0)
            continue;
        anyMass = true;
        highestMid =
            other.lo + (static_cast<double>(i) + 0.5) * other.width;
    }
    for (double v : other.overflowPending)
        highestMid = std::max(highestMid, v);
    if ((anyMass || !other.overflowPending.empty()) && highestMid >= hi)
        widenToInclude(highestMid);

    for (std::size_t i = 0; i < other.bins.size(); ++i) {
        const std::uint64_t mass = other.bins[i];
        if (mass == 0)
            continue;
        const double mid =
            other.lo + (static_cast<double>(i) + 0.5) * other.width;
        total += mass;
        if (mid < lo) {
            underflow += mass;
            bins[0] += mass;
            continue;
        }
        const auto idx = static_cast<std::size_t>((mid - lo) / width);
        bins[std::min(idx, bins.size() - 1)] += mass;
    }
    for (double v : other.overflowPending) {
        ++total;
        if (v < lo) {
            ++underflow;
            ++bins[0];
            continue;
        }
        const auto idx = static_cast<std::size_t>((v - lo) / width);
        bins[std::min(idx, bins.size() - 1)] += 1;
    }
}

double
AdaptiveHistogram::binLowerEdge(std::size_t i) const
{
    TM_ASSERT(i < bins.size(), "bin index out of range");
    return lo + static_cast<double>(i) * width;
}

StaticHistogram::StaticHistogram(double lo_, double hi_,
                                 std::size_t binCount)
    : lo(lo_), hi(hi_)
{
    if (binCount < 2)
        throw ConfigError("static histogram needs at least 2 bins");
    if (!(hi_ > lo_))
        throw ConfigError("static histogram requires hi > lo");
    width = (hi_ - lo_) / static_cast<double>(binCount);
    bins.assign(binCount, 0);
}

// tmlint:hot-path-begin -- clamp path of the biased static design,
// exercised once per out-of-range sample.
void
StaticHistogram::addSlow(double x)
{
    if (x < lo) {
        ++clampedLo;
        ++bins[0];
        return;
    }
    if (x >= hi) {
        ++clampedHi;
        ++bins[bins.size() - 1];
        return;
    }
    const auto idx = static_cast<std::size_t>((x - lo) / width);
    ++bins[std::min(idx, bins.size() - 1)];
}
// tmlint:hot-path-end

double
StaticHistogram::quantile(double q) const
{
    if (total == 0)
        throw NumericalError("quantile of an empty histogram");
    if (!(q >= 0.0 && q <= 1.0))
        throw NumericalError("quantile order must lie in [0, 1]");
    const double target =
        std::max(1.0, std::ceil(q * static_cast<double>(total)));
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < bins.size(); ++i) {
        const std::uint64_t mass = bins[i];
        if (static_cast<double>(cum + mass) >= target && mass > 0) {
            const double within =
                (target - static_cast<double>(cum)) /
                static_cast<double>(mass);
            return lo + (static_cast<double>(i) + within) * width;
        }
        cum += mass;
    }
    return hi;
}

double
StaticHistogram::cdf(double x) const
{
    if (total == 0)
        return 0.0;
    if (x < lo)
        return 0.0;
    if (x >= hi)
        return 1.0;
    std::uint64_t below = 0;
    const double pos = (x - lo) / width;
    const auto full = static_cast<std::size_t>(pos);
    for (std::size_t i = 0; i < full && i < bins.size(); ++i)
        below += bins[i];
    if (full < bins.size()) {
        const double frac = pos - static_cast<double>(full);
        below += static_cast<std::uint64_t>(
            frac * static_cast<double>(bins[full]));
    }
    return static_cast<double>(below) / static_cast<double>(total);
}

} // namespace stats
} // namespace treadmill
