/**
 * @file
 * Latency histograms: the adaptive design Treadmill uses and the static
 * design whose bias the paper demonstrates.
 *
 * Treadmill's three-phase execution (warm-up / calibration / measurement)
 * is reflected here: AdaptiveHistogram is constructed from calibration
 * samples which set the initial bin bounds, then re-bins itself whenever
 * a sufficient fraction of incoming values exceeds the current upper
 * bound. StaticHistogram clamps out-of-range samples into its edge bins,
 * reproducing the bias of non-adaptive load testers (paper S II-B).
 */
// tmlint:hot-path -- add() is called once per recorded sample; the
// inline fast path must stay allocation- and exception-free.

#ifndef TREADMILL_STATS_HISTOGRAM_H_
#define TREADMILL_STATS_HISTOGRAM_H_

#include <cstdint>
#include <vector>

namespace treadmill {
namespace stats {

/**
 * Linear-binned histogram that widens its range when samples overflow.
 *
 * Re-binning doubles the bin width (merging adjacent bin pairs exactly)
 * until the triggering value fits, so no measured mass is ever lost --
 * only resolution degrades, and only when the tail demands more range.
 */
class AdaptiveHistogram
{
  public:
    /** Tuning parameters. */
    struct Params {
        /** Number of bins kept across re-binnings. */
        std::size_t binCount = 1024;
        /** Re-bin once this many samples have landed above the range. */
        std::uint64_t overflowTrigger = 64;
        /** Headroom factor applied above the calibration maximum. */
        double calibrationHeadroom = 2.0;
    };

    /**
     * Calibrate bounds from raw samples (Treadmill's calibration phase).
     *
     * @param calibration Raw latency samples; must be non-empty.
     */
    AdaptiveHistogram(const std::vector<double> &calibration,
                      const Params &params);
    explicit AdaptiveHistogram(const std::vector<double> &calibration)
        : AdaptiveHistogram(calibration, Params{}) {}

    /** Construct with explicit bounds (no calibration data). */
    AdaptiveHistogram(double lo, double hi, const Params &params);
    AdaptiveHistogram(double lo_, double hi_)
        : AdaptiveHistogram(lo_, hi_, Params{}) {}

    /**
     * Record one sample (measurement phase).
     *
     * Inlined fast path: once calibration has sized the range, nearly
     * every sample lands in [lo, hi) and costs one bounds check plus
     * one bin increment; under/overflow handling stays out of line.
     */
    void
    add(double x)
    {
        ++total;
        if (x >= lo && x < hi) {
            const auto idx = static_cast<std::size_t>((x - lo) / width);
            ++bins[idx < bins.size() ? idx : bins.size() - 1];
            return;
        }
        addSlow(x);
    }

    /** Total recorded samples (including any pending overflow). */
    std::uint64_t count() const { return total; }

    /** Current lower edge of the binned range. */
    double lowerBound() const { return lo; }

    /** Current upper edge of the binned range. */
    double upperBound() const { return hi; }

    /** Number of re-binning episodes performed so far. */
    std::uint64_t rebinCount() const { return rebins; }

    /**
     * The q-quantile with linear interpolation inside the bin.
     * Requires at least one sample.
     */
    double quantile(double q) const;

    /** Approximate CDF value at @p x. */
    double cdf(double x) const;

    /** Mean of the recorded distribution (bin midpoints). */
    double mean() const;

    /** Merge another histogram's mass into this one (by bin midpoint). */
    void merge(const AdaptiveHistogram &other);

    /** Bin count currently configured. */
    std::size_t binCount() const { return bins.size(); }

    /** Mass in bin @p i. */
    std::uint64_t binMass(std::size_t i) const { return bins[i]; }

    /** Lower edge of bin @p i. */
    double binLowerEdge(std::size_t i) const;

    /** Capacity of the parked-overflow buffer (regression hook: it is
     *  pre-reserved to overflowTrigger and must never grow past it). */
    std::size_t overflowCapacity() const
    {
        return overflowPending.capacity();
    }

  private:
    /** Out-of-range samples: clamp below, park-and-widen above. */
    void addSlow(double x);

    /** Double the range (merging bin pairs) until @p x fits. */
    void widenToInclude(double x);

    /** Flush samples parked above the range into the bins. */
    void absorbOverflow();

    Params params;
    double lo;
    double hi;
    double width;
    std::vector<std::uint64_t> bins;
    std::vector<double> overflowPending;
    std::uint64_t underflow = 0; // clamped into bin 0 (kept exact via lo=0)
    std::uint64_t total = 0;
    std::uint64_t rebins = 0;
};

/**
 * Fixed-range histogram that clamps out-of-range samples; models the
 * "static histogram binning" pitfall. Values above the range pile into
 * the last bin, silently capping measured tail latency.
 */
class StaticHistogram
{
  public:
    StaticHistogram(double lo, double hi, std::size_t binCount);

    /** Record one sample; in-range fast path inlined as in
     *  AdaptiveHistogram::add. */
    void
    add(double x)
    {
        ++total;
        if (x >= lo && x < hi) {
            const auto idx = static_cast<std::size_t>((x - lo) / width);
            ++bins[idx < bins.size() ? idx : bins.size() - 1];
            return;
        }
        addSlow(x);
    }

    std::uint64_t count() const { return total; }

    /** Number of samples clamped into the top bin from above. */
    std::uint64_t clampedHigh() const { return clampedHi; }

    /** Number of samples clamped into the bottom bin from below. */
    std::uint64_t clampedLow() const { return clampedLo; }

    double quantile(double q) const;

    double cdf(double x) const;

  private:
    /** Clamp an out-of-range sample into the edge bins. */
    void addSlow(double x);

    double lo;
    double hi;
    double width;
    std::vector<std::uint64_t> bins;
    std::uint64_t total = 0;
    std::uint64_t clampedHi = 0;
    std::uint64_t clampedLo = 0;
};

} // namespace stats
} // namespace treadmill

#endif // TREADMILL_STATS_HISTOGRAM_H_
