#include "stats/hypothesis.h"

#include <algorithm>
#include <cmath>

#include "stats/summary.h"
#include "util/error.h"

namespace treadmill {
namespace stats {

double
normalCdf(double z)
{
    return 0.5 * std::erfc(-z / std::sqrt(2.0));
}

double
twoSidedPValue(double z)
{
    return 2.0 * (1.0 - normalCdf(std::fabs(z)));
}

TestResult
permutationTest(const std::vector<double> &a, const std::vector<double> &b,
                std::size_t permutations, Rng &rng,
                const std::function<double(const std::vector<double> &,
                                           const std::vector<double> &)>
                    &statistic)
{
    if (a.empty() || b.empty())
        throw NumericalError("permutation test needs non-empty groups");
    if (permutations == 0)
        throw ConfigError("permutation count must be positive");

    const auto stat =
        statistic
            ? statistic
            : std::function<double(const std::vector<double> &,
                                   const std::vector<double> &)>(
                  [](const std::vector<double> &x,
                     const std::vector<double> &y) {
                      return mean(x) - mean(y);
                  });

    const double observed = stat(a, b);

    std::vector<double> pooled;
    pooled.reserve(a.size() + b.size());
    pooled.insert(pooled.end(), a.begin(), a.end());
    pooled.insert(pooled.end(), b.begin(), b.end());

    std::size_t atLeastAsExtreme = 0;
    std::vector<double> ga(a.size());
    std::vector<double> gb(b.size());
    for (std::size_t p = 0; p < permutations; ++p) {
        // Fisher-Yates shuffle of the pooled labels.
        for (std::size_t i = pooled.size() - 1; i > 0; --i) {
            const auto j =
                static_cast<std::size_t>(rng.nextBelow(i + 1));
            std::swap(pooled[i], pooled[j]);
        }
        std::copy(pooled.begin(),
                  pooled.begin() + static_cast<std::ptrdiff_t>(a.size()),
                  ga.begin());
        std::copy(pooled.begin() + static_cast<std::ptrdiff_t>(a.size()),
                  pooled.end(), gb.begin());
        if (std::fabs(stat(ga, gb)) >= std::fabs(observed))
            ++atLeastAsExtreme;
    }

    TestResult result;
    result.statistic = observed;
    // Add-one smoothing keeps the p-value away from an impossible 0.
    result.pValue = (static_cast<double>(atLeastAsExtreme) + 1.0) /
                    (static_cast<double>(permutations) + 1.0);
    return result;
}

TestResult
welchTTest(const std::vector<double> &a, const std::vector<double> &b)
{
    if (a.size() < 2 || b.size() < 2)
        throw NumericalError("Welch t-test needs >= 2 samples per group");
    const double ma = mean(a);
    const double mb = mean(b);
    const double sa = stddev(a);
    const double sb = stddev(b);
    const double na = static_cast<double>(a.size());
    const double nb = static_cast<double>(b.size());
    const double se = std::sqrt(sa * sa / na + sb * sb / nb);

    TestResult result;
    if (se == 0.0) {
        result.statistic = ma == mb ? 0.0 : INFINITY;
        result.pValue = ma == mb ? 1.0 : 0.0;
        return result;
    }
    result.statistic = (ma - mb) / se;
    result.pValue = twoSidedPValue(result.statistic);
    return result;
}

} // namespace stats
} // namespace treadmill
