#include "stats/bootstrap.h"

#include <algorithm>

#include "stats/summary.h"
#include "util/error.h"

namespace treadmill {
namespace stats {

namespace {

BootstrapResult
finish(double estimate, std::vector<double> replicates, double confidence)
{
    BootstrapResult result;
    result.estimate = estimate;
    result.standardError = stddev(replicates);
    std::vector<double> sorted = replicates;
    std::sort(sorted.begin(), sorted.end());
    const double alpha = 1.0 - confidence;
    result.ciLow = quantileSorted(sorted, alpha / 2.0);
    result.ciHigh = quantileSorted(sorted, 1.0 - alpha / 2.0);
    result.replicates = std::move(replicates);
    return result;
}

} // namespace

BootstrapResult
bootstrap(const std::vector<double> &sample,
          const std::function<double(const std::vector<double> &)>
              &statistic,
          std::size_t replicates, Rng &rng, double confidence)
{
    if (sample.empty())
        throw NumericalError("bootstrap of an empty sample");
    if (replicates < 2)
        throw ConfigError("bootstrap needs at least 2 replicates");

    std::vector<double> reps;
    reps.reserve(replicates);
    std::vector<double> resample(sample.size());
    for (std::size_t b = 0; b < replicates; ++b) {
        for (auto &slot : resample)
            slot = sample[rng.nextBelow(sample.size())];
        reps.push_back(statistic(resample));
    }
    return finish(statistic(sample), std::move(reps), confidence);
}

BootstrapResult
bootstrapIndexed(std::size_t sampleSize,
                 const std::function<double(
                     const std::vector<std::size_t> &)> &statistic,
                 std::size_t replicates, Rng &rng, double confidence)
{
    if (sampleSize == 0)
        throw NumericalError("bootstrap of an empty sample");
    if (replicates < 2)
        throw ConfigError("bootstrap needs at least 2 replicates");

    std::vector<std::size_t> identity(sampleSize);
    for (std::size_t i = 0; i < sampleSize; ++i)
        identity[i] = i;

    std::vector<double> reps;
    reps.reserve(replicates);
    std::vector<std::size_t> resample(sampleSize);
    for (std::size_t b = 0; b < replicates; ++b) {
        for (auto &slot : resample)
            slot = static_cast<std::size_t>(rng.nextBelow(sampleSize));
        reps.push_back(statistic(resample));
    }
    return finish(statistic(identity), std::move(reps), confidence);
}

} // namespace stats
} // namespace treadmill
