#include "stats/reservoir.h"

#include "util/error.h"

namespace treadmill {
namespace stats {

ReservoirSampler::ReservoirSampler(std::size_t capacity, const Rng &rng_)
    : cap(capacity), rng(rng_)
{
    if (capacity == 0)
        throw ConfigError("reservoir capacity must be positive");
    reservoir.reserve(capacity);
}

void
ReservoirSampler::add(double x)
{
    ++offered;
    if (reservoir.size() < cap) {
        reservoir.push_back(x);
        return;
    }
    const std::uint64_t slot = rng.nextBelow(offered);
    if (slot < cap)
        reservoir[static_cast<std::size_t>(slot)] = x;
}

} // namespace stats
} // namespace treadmill
