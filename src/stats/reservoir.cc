#include "stats/reservoir.h"

#include <algorithm>

#include "util/error.h"

namespace treadmill {
namespace stats {

ReservoirSampler::ReservoirSampler(std::size_t capacity, const Rng &rng_)
    : cap(capacity), rng(rng_)
{
    if (capacity == 0)
        throw ConfigError("reservoir capacity must be positive");
    reservoir.reserve(capacity);
}

ReservoirSampler
ReservoirSampler::restored(std::size_t capacity, const Rng &rng_,
                           std::vector<double> samples,
                           std::uint64_t seen)
{
    ReservoirSampler sampler(capacity, rng_);
    if (samples.size() > capacity)
        throw ConfigError("restored reservoir holds more samples than "
                          "its capacity");
    if (seen < samples.size())
        throw ConfigError("restored reservoir claims fewer "
                          "observations than retained samples");
    if (seen > samples.size() && samples.size() < capacity)
        throw ConfigError("restored reservoir dropped observations "
                          "without being full");
    sampler.reservoir = std::move(samples);
    sampler.offered = seen;
    return sampler;
}

void
ReservoirSampler::merge(const ReservoirSampler &other)
{
    if (other.offered == 0)
        return;

    // Work on copies of both retained sets; rebuild `reservoir`.
    std::vector<double> mine;
    mine.swap(reservoir);
    std::vector<double> theirs = other.reservoir;
    const std::uint64_t total = offered + other.offered;

    if (mine.size() + theirs.size() <= cap && offered == mine.size() &&
        other.offered == theirs.size()) {
        // Neither side ever dropped a sample and the union fits: the
        // concatenation *is* the union stream.
        reservoir = std::move(mine);
        reservoir.insert(reservoir.end(), theirs.begin(),
                         theirs.end());
        offered = total;
        return;
    }

    // Sequential without-replacement allocation at stream level: each
    // output slot draws side A with probability remainingA / remaining,
    // which makes the per-side counts exactly hypergeometric -- the
    // distribution of a uniform size-k subset of the union stream.
    // Within a side, retained items are uniform for its stream, so
    // picking uniformly without replacement yields uniform union
    // membership.
    const std::size_t target =
        static_cast<std::size_t>(std::min<std::uint64_t>(cap, total));
    reservoir.reserve(target);
    std::uint64_t remainingMine = offered;
    std::uint64_t remainingTheirs = other.offered;
    while (reservoir.size() < target) {
        bool fromMine;
        if (mine.empty() && theirs.empty())
            break; // donor overflowed with a smaller capacity
        if (mine.empty())
            fromMine = false;
        else if (theirs.empty())
            fromMine = true;
        else
            fromMine = rng.nextBelow(remainingMine + remainingTheirs) <
                       remainingMine;
        std::vector<double> &src = fromMine ? mine : theirs;
        std::uint64_t &remaining =
            fromMine ? remainingMine : remainingTheirs;
        const std::size_t pick = static_cast<std::size_t>(
            rng.nextBelow(src.size()));
        reservoir.push_back(src[pick]);
        src[pick] = src.back();
        src.pop_back();
        --remaining;
    }
    offered = total;
}

void
ReservoirSampler::add(double x)
{
    ++offered;
    if (reservoir.size() < cap) {
        reservoir.push_back(x);
        return;
    }
    const std::uint64_t slot = rng.nextBelow(offered);
    if (slot < cap)
        reservoir[static_cast<std::size_t>(slot)] = x;
}

} // namespace stats
} // namespace treadmill
