/**
 * @file
 * Streaming summary statistics and exact sample quantiles.
 */

#ifndef TREADMILL_STATS_SUMMARY_H_
#define TREADMILL_STATS_SUMMARY_H_

#include <cstdint>
#include <vector>

namespace treadmill {
namespace stats {

/**
 * Single-pass count/mean/variance/min/max accumulator (Welford's
 * algorithm), numerically stable for long runs.
 */
class Summary
{
  public:
    Summary() = default;

    /** Fold one observation into the summary. */
    void add(double x);

    /** Fold another summary into this one (parallel merge). */
    void merge(const Summary &other);

    std::uint64_t count() const { return n; }
    double mean() const;
    /** Unbiased sample variance (n-1 denominator); 0 for n < 2. */
    double variance() const;
    double stddev() const;
    double min() const;
    double max() const;
    double sum() const { return total; }

  private:
    std::uint64_t n = 0;
    double meanAcc = 0.0;
    double m2 = 0.0;
    double lo = 0.0;
    double hi = 0.0;
    double total = 0.0;
};

/**
 * The q-quantile of @p sorted (ascending) by linear interpolation
 * (R type-7 / NumPy default). @p sorted must be non-empty.
 */
double quantileSorted(const std::vector<double> &sorted, double q);

/**
 * The q-quantile of @p samples (any order); sorts a copy.
 */
double quantile(std::vector<double> samples, double q);

/** Arithmetic mean of @p xs; 0 when empty. */
double mean(const std::vector<double> &xs);

/** Median of @p xs (sorts a copy); 0 when empty. */
double median(std::vector<double> xs);

/** Unbiased sample standard deviation of @p xs; 0 for size < 2. */
double stddev(const std::vector<double> &xs);

} // namespace stats
} // namespace treadmill

#endif // TREADMILL_STATS_SUMMARY_H_
