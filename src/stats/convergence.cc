#include "stats/convergence.h"

#include <cmath>

#include "stats/summary.h"
#include "util/error.h"

namespace treadmill {
namespace stats {

ConvergenceTracker::ConvergenceTracker(double relativeTolerance,
                                       std::size_t window_,
                                       std::size_t minRuns_)
    : tolerance(relativeTolerance), window(window_), minRuns(minRuns_)
{
    if (!(relativeTolerance > 0.0))
        throw ConfigError("convergence tolerance must be positive");
    if (window_ == 0)
        throw ConfigError("convergence window must be positive");
}

void
ConvergenceTracker::add(double value)
{
    values.push_back(value);
    meanHistory.push_back(mean(values));
}

bool
ConvergenceTracker::converged() const
{
    if (values.size() < minRuns || meanHistory.size() < window + 1)
        return false;
    const double current = meanHistory.back();
    if (current == 0.0)
        return true;
    for (std::size_t i = meanHistory.size() - window;
         i < meanHistory.size(); ++i) {
        const double prev = meanHistory[i - 1];
        const double change = std::fabs(meanHistory[i] - prev) /
                              std::fabs(current);
        if (change > tolerance)
            return false;
    }
    return true;
}

double
ConvergenceTracker::runningMean() const
{
    return meanHistory.empty() ? 0.0 : meanHistory.back();
}

} // namespace stats
} // namespace treadmill
