/**
 * @file
 * Hypothesis tests used for factor screening and inference.
 *
 * The paper screens candidate factors with null-hypothesis testing over
 * repeated experiments under random factor permutations (S IV-B), and
 * reports p-values for regression coefficients (Table IV). We provide a
 * permutation test (distribution-free, matching the paper's setting),
 * Welch's t-test, and normal-distribution helpers.
 */

#ifndef TREADMILL_STATS_HYPOTHESIS_H_
#define TREADMILL_STATS_HYPOTHESIS_H_

#include <functional>
#include <vector>

#include "util/rng.h"

namespace treadmill {
namespace stats {

/** Standard normal cumulative distribution function. */
double normalCdf(double z);

/** Two-sided p-value for a z-statistic under the standard normal. */
double twoSidedPValue(double z);

/** Result of a two-sample test. */
struct TestResult {
    double statistic = 0.0; ///< Observed test statistic.
    double pValue = 1.0;    ///< Two-sided p-value.
};

/**
 * Two-sample permutation test on an arbitrary statistic.
 *
 * @param a First group.
 * @param b Second group.
 * @param statistic Maps (groupA, groupB) to the test statistic; the
 *        default (empty) uses the difference in means.
 * @param permutations Number of random label permutations.
 */
TestResult
permutationTest(const std::vector<double> &a, const std::vector<double> &b,
                std::size_t permutations, Rng &rng,
                const std::function<double(const std::vector<double> &,
                                           const std::vector<double> &)>
                    &statistic = {});

/** Welch's unequal-variance t-test (normal approximation for p). */
TestResult welchTTest(const std::vector<double> &a,
                      const std::vector<double> &b);

} // namespace stats
} // namespace treadmill

#endif // TREADMILL_STATS_HYPOTHESIS_H_
