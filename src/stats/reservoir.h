/**
 * @file
 * Reservoir sampling for bounded-memory sample retention.
 *
 * The attribution procedure sub-samples 20k latency samples per
 * experiment (paper S V-A); ReservoirSampler keeps a uniform random
 * subset of an unbounded stream in O(capacity) memory.
 */

#ifndef TREADMILL_STATS_RESERVOIR_H_
#define TREADMILL_STATS_RESERVOIR_H_

#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace treadmill {
namespace stats {

/** Algorithm-R reservoir sampler over doubles. */
class ReservoirSampler
{
  public:
    /**
     * @param capacity Maximum retained samples.
     * @param rng Source of randomness (copied; the sampler owns its
     *            stream so callers' sequences are unaffected).
     */
    ReservoirSampler(std::size_t capacity, const Rng &rng);

    /** Offer one observation to the reservoir. */
    void add(double x);

    /** Total observations offered so far. */
    std::uint64_t seen() const { return offered; }

    /** The retained sample (unspecified order). */
    const std::vector<double> &samples() const { return reservoir; }

    /** Capacity of the reservoir. */
    std::size_t capacity() const { return cap; }

  private:
    std::size_t cap;
    Rng rng;
    std::vector<double> reservoir;
    std::uint64_t offered = 0;
};

} // namespace stats
} // namespace treadmill

#endif // TREADMILL_STATS_RESERVOIR_H_
