/**
 * @file
 * Reservoir sampling for bounded-memory sample retention.
 *
 * The attribution procedure sub-samples 20k latency samples per
 * experiment (paper S V-A); ReservoirSampler keeps a uniform random
 * subset of an unbounded stream in O(capacity) memory.
 */

#ifndef TREADMILL_STATS_RESERVOIR_H_
#define TREADMILL_STATS_RESERVOIR_H_

#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace treadmill {
namespace stats {

/** Algorithm-R reservoir sampler over doubles. */
class ReservoirSampler
{
  public:
    /**
     * @param capacity Maximum retained samples.
     * @param rng Source of randomness (copied; the sampler owns its
     *            stream so callers' sequences are unaffected).
     */
    ReservoirSampler(std::size_t capacity, const Rng &rng);

    /**
     * Rebuild a sampler from persisted state (the run store's
     * reservoir columns): @p samples were retained out of a stream of
     * @p seen observations. Further add() and merge() calls behave
     * exactly as if the original sampler had kept running.
     *
     * @throws ConfigError when samples exceed capacity, or when
     *         seen < samples (a reservoir cannot retain more than it
     *         was offered).
     */
    static ReservoirSampler restored(std::size_t capacity,
                                     const Rng &rng,
                                     std::vector<double> samples,
                                     std::uint64_t seen);

    /** Offer one observation to the reservoir. */
    void add(double x);

    /**
     * Fold @p other into this sampler so the result is a uniform
     * sample of the union stream, weighting draws by each side's
     * seen() count (hypergeometric allocation: the number of retained
     * items taken from each side follows the exact distribution of a
     * uniform subset of the merged stream).
     *
     * Exact when each side's retained samples are a uniform sample of
     * its own stream and @p other either fits entirely or has
     * capacity >= this->capacity(); with a smaller, overflowed donor
     * the draw is clamped to the donor's retained samples (slight
     * deficit of donor items, the best any merge can do from what was
     * kept).
     */
    void merge(const ReservoirSampler &other);

    /** Total observations offered so far. */
    std::uint64_t seen() const { return offered; }

    /** The retained sample (unspecified order). */
    const std::vector<double> &samples() const { return reservoir; }

    /** Capacity of the reservoir. */
    std::size_t capacity() const { return cap; }

  private:
    std::size_t cap;
    Rng rng;
    std::vector<double> reservoir;
    std::uint64_t offered = 0;
};

} // namespace stats
} // namespace treadmill

#endif // TREADMILL_STATS_RESERVOIR_H_
