/**
 * @file
 * Per-run placement state: the source of performance hysteresis.
 *
 * The paper attributes hysteresis to "changes in underlying system
 * states such as the mapping of logical memory, threads, and
 * connections to physical resources" (S I). PlacementState draws those
 * mappings once per run from the run seed: which cores host the worker
 * threads, how connections are assigned to workers, where each
 * connection's buffer pages landed, and how interrupt queues rotate
 * onto cores. Two runs with identical HardwareConfig but different run
 * seeds therefore converge to different latency values -- exactly the
 * Fig 4 phenomenon -- while a fixed run seed reproduces bit-for-bit.
 */

#ifndef TREADMILL_HW_PLACEMENT_H_
#define TREADMILL_HW_PLACEMENT_H_

#include <cstdint>
#include <vector>

#include "hw/hardware_config.h"
#include "hw/machine_spec.h"
#include "util/rng.h"

namespace treadmill {
namespace hw {

/** Randomized per-run resource mappings. */
class PlacementState
{
  public:
    /**
     * Draw a placement for one run.
     *
     * @param spec Machine description.
     * @param config Factor levels (the NUMA policy shapes buffer
     *        placement probabilities).
     * @param runSeed Seed identifying the run; same seed, same state.
     */
    PlacementState(const MachineSpec &spec, const HardwareConfig &config,
                   std::uint64_t runSeed);

    /** Core hosting worker thread @p workerIdx (socket 0). */
    unsigned workerCore(unsigned workerIdx) const;

    /** Worker thread serving connection @p connectionId. */
    unsigned workerOfConnection(std::uint64_t connectionId) const;

    /**
     * True when @p connectionId's buffer pages are on the worker's
     * local memory node. Decided per connection at setup time under
     * the same-node policy; under interleave each access is decided
     * per touch (see perAccessRemoteProbability()).
     */
    bool bufferIsLocal(std::uint64_t connectionId) const;

    /**
     * Probability that one buffer access under the interleave policy
     * touches the remote node (around one half, jittered per run).
     */
    double perAccessRemoteProbability() const { return interleaveRemote; }

    /** Rotation applied to the NIC queue -> core mapping this run. */
    unsigned nicQueueRotation() const { return nicRotation; }

    /** Fraction of connections with node-local buffers this run. */
    double localBufferFraction() const { return sameNodeLocal; }

    /** Fraction of connections skewed onto one worker this run (the
     *  accept-order luck that makes one event loop run hot). */
    double connectionSkew() const { return skewFraction; }

    /** The worker that receives the skewed connections. */
    unsigned skewedWorker() const { return hotWorker; }

    /** The run seed this placement was drawn from. */
    std::uint64_t seed() const { return runSeed; }

  private:
    std::uint64_t runSeed;
    unsigned workerCount;
    std::vector<unsigned> workerCores;
    std::uint64_t connectionShuffle;
    double sameNodeLocal;
    double interleaveRemote;
    unsigned nicRotation;
    double skewFraction;
    unsigned hotWorker;
    NumaPolicy numaPolicy;
};

} // namespace hw
} // namespace treadmill

#endif // TREADMILL_HW_PLACEMENT_H_
