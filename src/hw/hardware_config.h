/**
 * @file
 * The four hardware factors of the paper's Table III.
 *
 * Each factor is a 2-level switch; a HardwareConfig is one cell of the
 * 2^4 full-factorial design. Level coding follows the paper exactly:
 * low = 0, high = 1, with the high level being {interleave, turbo on,
 * performance governor, all-nodes NIC affinity}.
 */

#ifndef TREADMILL_HW_HARDWARE_CONFIG_H_
#define TREADMILL_HW_HARDWARE_CONFIG_H_

#include <array>
#include <string>
#include <vector>

namespace treadmill {
namespace hw {

/** NUMA memory allocation policy for connection buffers. */
enum class NumaPolicy { SameNode, Interleave };

/** Turbo Boost enablement. */
enum class TurboMode { Off, On };

/** DVFS governor selection. */
enum class DvfsGovernor { Ondemand, Performance };

/** NIC interrupt-queue to core mapping. */
enum class NicAffinity { SameNode, AllNodes };

/** One permutation of the four factor levels (a Table III row set). */
struct HardwareConfig {
    NumaPolicy numa = NumaPolicy::SameNode;
    TurboMode turbo = TurboMode::Off;
    DvfsGovernor dvfs = DvfsGovernor::Ondemand;
    NicAffinity nic = NicAffinity::SameNode;

    /** @name Paper-style 0/1 level coding (Table III)
     * @{
     */
    bool numaHigh() const { return numa == NumaPolicy::Interleave; }
    bool turboHigh() const { return turbo == TurboMode::On; }
    bool dvfsHigh() const { return dvfs == DvfsGovernor::Performance; }
    bool nicHigh() const { return nic == NicAffinity::AllNodes; }
    /** @} */

    /** Factor levels as a 0/1 vector in canonical order. */
    std::array<double, 4> levels() const;

    /** Build from a 4-bit index (bit 0 = numa ... bit 3 = nic). */
    static HardwareConfig fromIndex(unsigned index);

    /** Index of this config in the 16-cell factorial enumeration. */
    unsigned index() const;

    /** "numa-high,turbo-low,dvfs-low,nic-high" (Fig 7 legend style). */
    std::string label() const;

    /** Short label such as "1010" in canonical factor order. */
    std::string bits() const;

    bool operator==(const HardwareConfig &other) const = default;
};

/** Canonical factor names in design order. */
const std::vector<std::string> &factorNames();

/** All 16 configurations in index order. */
std::vector<HardwareConfig> allConfigs();

} // namespace hw
} // namespace treadmill

#endif // TREADMILL_HW_HARDWARE_CONFIG_H_
