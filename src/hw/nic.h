/**
 * @file
 * NIC receive-side scaling (RSS) model.
 *
 * The simulated NIC hashes each flow into one of 2^4 = 16 interrupt
 * queues (the paper's hardware exposes a 4-bit hash) and steers each
 * queue's interrupts to a core according to the affinity factor:
 * same-node keeps every queue on socket-0 cores, all-nodes spreads
 * them across both sockets. The per-run rotation models irqbalance
 * landing on a different assignment each boot.
 */

#ifndef TREADMILL_HW_NIC_H_
#define TREADMILL_HW_NIC_H_

#include <cstdint>

#include "hw/hardware_config.h"
#include "hw/machine_spec.h"
#include "hw/placement.h"

namespace treadmill {
namespace hw {

/** Maps flows to interrupt queues to cores. */
class Nic
{
  public:
    Nic(const MachineSpec &spec, const HardwareConfig &config,
        const PlacementState &placement);

    /** RSS hash: interrupt queue for @p connectionId. */
    unsigned queueOf(std::uint64_t connectionId) const;

    /** Core handling interrupts for queue @p queue. */
    unsigned coreOfQueue(unsigned queue) const;

    /** Core handling interrupts for @p connectionId's packets. */
    unsigned irqCore(std::uint64_t connectionId) const;

    /** Number of interrupt queues. */
    unsigned queues() const { return queueCount; }

    /** @name Fault-injection hooks (interrupt storms)
     * @{
     */
    /**
     * Current multiplier on interrupt-handling cost. Servers scale
     * their per-request IRQ cycles by this; it is 1.0 except inside an
     * injected interrupt-storm window.
     */
    double irqLoadFactor() const { return irqLoad; }

    /** Set the storm multiplier (injector hook; 1.0 = healthy). */
    void setIrqLoadFactor(double factor) { irqLoad = factor; }
    /** @} */

  private:
    const MachineSpec &spec;
    NicAffinity affinity;
    unsigned rotation;
    unsigned queueCount;
    double irqLoad = 1.0;
};

} // namespace hw
} // namespace treadmill

#endif // TREADMILL_HW_NIC_H_
