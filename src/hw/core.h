/**
 * @file
 * A single CPU core as a FIFO work queue.
 *
 * Interrupt handling and worker-thread request processing are both
 * submitted to cores as WorkItems; a busy core queues them, which is
 * where server-side queueing latency comes from.
 */

#ifndef TREADMILL_HW_CORE_H_
#define TREADMILL_HW_CORE_H_

#include <cstdint>
#include <functional>

#include "sim/simulation.h"
#include "util/inline_function.h"
#include "util/ring_buffer.h"
#include "util/types.h"

namespace treadmill {
namespace hw {

/** One unit of CPU work with its completion callback. */
struct WorkItem {
    /** Completion callback. Inline capacity of 64 bytes covers the
     *  server-side closures (this + request handle + respond fn), so
     *  submitting work never allocates. Move-only, like the queue. */
    using DoneFn = util::InlineFunction<void(SimTime start, SimTime end), 64>;

    /** Frequency-scaled work (CPU cycles). */
    double cycles = 0.0;
    /** Frequency-independent stall time (memory, interconnect). */
    SimDuration fixedStall = 0;
    /** Whether Turbo may accelerate this item. */
    bool allowTurbo = true;
    /** Invoked when the item finishes executing. */
    DoneFn done;
};

/**
 * FIFO run queue for one core. The owning Machine supplies the
 * duration model (frequency, turbo, stalls) via a callback so Core
 * stays a pure queueing element.
 */
class Core
{
  public:
    /** Computes the wall-clock duration of an item started now. */
    using DurationFn =
        std::function<SimDuration(unsigned coreId, const WorkItem &)>;

    Core(sim::Simulation &sim, unsigned coreId, DurationFn durationOf);

    Core(const Core &) = delete;
    Core &operator=(const Core &) = delete;
    Core(Core &&) = default;

    /** Enqueue @p item; starts immediately if the core is idle. */
    void submit(WorkItem item);

    /** True while an item is executing. */
    bool busy() const { return executing; }

    /** Items waiting behind the current one. */
    std::size_t queueDepth() const { return queue.size(); }

    /** Total busy nanoseconds so far. */
    SimDuration busyTime() const { return totalBusy; }

    /** Items completed so far. */
    std::uint64_t completed() const { return completedCount; }

    /** Busy fraction of elapsed simulation time. */
    double utilization() const;

  private:
    /** Begin executing the next queued item. */
    void startNext();

    sim::Simulation &sim;
    unsigned id;
    DurationFn durationOf;
    /** FIFO of waiting items; the ring retains capacity, so a warmed
     *  core queues and drains work without heap traffic (std::deque
     *  churns page-sized chunks). */
    util::RingBuffer<WorkItem> queue;
    bool executing = false;
    /** Completion state of the executing item, held here so the
     *  completion event captures only `this` (8 bytes, inline). One
     *  item executes at a time per core, so a single slot suffices. */
    WorkItem::DoneFn currentDone;
    SimTime currentStart = 0;
    SimDuration totalBusy = 0;
    std::uint64_t completedCount = 0;
};

} // namespace hw
} // namespace treadmill

#endif // TREADMILL_HW_CORE_H_
