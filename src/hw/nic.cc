#include "hw/nic.h"

namespace treadmill {
namespace hw {

Nic::Nic(const MachineSpec &spec_, const HardwareConfig &config,
         const PlacementState &placement)
    : spec(spec_), affinity(config.nic),
      rotation(placement.nicQueueRotation()),
      queueCount(spec_.nicQueues())
{
}

unsigned
Nic::queueOf(std::uint64_t connectionId) const
{
    // Toeplitz-like mixing reduced to a multiplicative hash; only the
    // low nicHashBits survive, as on the paper's hardware.
    std::uint64_t h = connectionId * 0x9e3779b97f4a7c15ull;
    h ^= h >> 29;
    return static_cast<unsigned>(h & (queueCount - 1));
}

unsigned
Nic::coreOfQueue(unsigned queue) const
{
    const unsigned rotated = (queue + rotation) % queueCount;
    if (affinity == NicAffinity::SameNode)
        return rotated % spec.coresPerSocket;
    return rotated % spec.totalCores();
}

unsigned
Nic::irqCore(std::uint64_t connectionId) const
{
    return coreOfQueue(queueOf(connectionId));
}

} // namespace hw
} // namespace treadmill
