#include "hw/placement.h"

#include <algorithm>

#include "util/logging.h"

namespace treadmill {
namespace hw {

PlacementState::PlacementState(const MachineSpec &spec,
                               const HardwareConfig &config,
                               std::uint64_t runSeed_)
    : runSeed(runSeed_), workerCount(spec.workerThreads),
      numaPolicy(config.numa)
{
    TM_ASSERT(spec.workerThreads <= spec.coresPerSocket,
              "worker threads must fit on socket 0");
    Rng rng = Rng(0x7f4a7c159e3779b9ull).substream(runSeed_);

    // Choose which socket-0 cores host the worker threads this run
    // (the OS scheduler's choice varies run to run).
    std::vector<unsigned> socket0(spec.coresPerSocket);
    for (unsigned i = 0; i < spec.coresPerSocket; ++i)
        socket0[i] = i;
    for (std::size_t i = socket0.size() - 1; i > 0; --i) {
        const auto j = static_cast<std::size_t>(rng.nextBelow(i + 1));
        std::swap(socket0[i], socket0[j]);
    }
    workerCores.assign(socket0.begin(),
                       socket0.begin() + spec.workerThreads);
    std::sort(workerCores.begin(), workerCores.end());

    // Connection-to-worker mapping varies with the accept order.
    connectionShuffle = rng.next() | 1u;

    // Same-node policy: allocation on node 0 succeeds until the node is
    // under pressure, so most -- but not all -- buffers land local; the
    // achieved fraction is a property of the run.
    sameNodeLocal = 0.78 + 0.14 * rng.nextDouble();

    // Interleave policy: page-granular round robin puts about half of
    // the touched lines remote, jittered by where page boundaries fell.
    interleaveRemote = 0.50 + 0.08 * (rng.nextDouble() - 0.5);

    nicRotation = static_cast<unsigned>(rng.nextBelow(spec.nicQueues()));

    // Accept-order luck: a run-specific slice of connections lands on
    // one "hot" worker thread. Bounded so the hot worker stays stable
    // (< ~25% above its fair share), but enough to move the measured
    // tail between runs -- the paper's hysteresis.
    skewFraction = 0.05 * rng.nextDouble();
    hotWorker = static_cast<unsigned>(rng.nextBelow(workerCount));
}

unsigned
PlacementState::workerCore(unsigned workerIdx) const
{
    TM_ASSERT(workerIdx < workerCount, "worker index out of range");
    return workerCores[workerIdx];
}

unsigned
PlacementState::workerOfConnection(std::uint64_t connectionId) const
{
    // Memcached dispatches accepted connections round-robin across
    // worker threads, keeping load approximately balanced; the per-run
    // offset rotates the assignment, and a bounded per-run fraction of
    // connections is skewed onto the hot worker (accept-order luck).
    // Connection ids encode (client << 32 | n).
    std::uint64_t h = (connectionId ^ (connectionShuffle << 1)) *
                      0x9e3779b97f4a7c15ull;
    h ^= h >> 33;
    const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
    if (u < skewFraction)
        return hotWorker;

    const std::uint64_t client = connectionId >> 32;
    const std::uint64_t local = connectionId & 0xffffffffull;
    return static_cast<unsigned>(
        (local + client + (connectionShuffle >> 8)) % workerCount);
}

bool
PlacementState::bufferIsLocal(std::uint64_t connectionId) const
{
    if (numaPolicy == NumaPolicy::Interleave) {
        // Interleaved buffers are never wholly local; per-access
        // locality is sampled with perAccessRemoteProbability().
        return false;
    }
    // Hash the connection id (mixed with this run's shuffle, so the
    // local/remote pattern itself varies across runs) against the
    // run's achieved local fraction.
    std::uint64_t h = (connectionId ^ connectionShuffle) *
                      0xff51afd7ed558ccdull;
    h ^= h >> 33;
    h *= 0xc4ceb9fe1a85ec53ull;
    h ^= h >> 33;
    const double u =
        static_cast<double>(h >> 11) * 0x1.0p-53;
    return u < sameNodeLocal;
}

} // namespace hw
} // namespace treadmill
