/**
 * @file
 * Static description of the simulated server machine.
 *
 * MachineSpec is the Table II analogue plus the tuning constants of the
 * behavioural models (DVFS governor, Turbo thermal pool, NUMA stalls,
 * NIC interrupt handling). One spec describes the system under test for
 * every experiment in the paper's evaluation.
 */

#ifndef TREADMILL_HW_MACHINE_SPEC_H_
#define TREADMILL_HW_MACHINE_SPEC_H_

#include <cstdint>
#include <string>

#include "util/types.h"

namespace treadmill {
namespace hw {

/** Static hardware description and model parameters. */
struct MachineSpec {
    /** @name Table II analogue
     * @{
     */
    std::string processor = "Simulated Xeon E5-2660 v2 class";
    unsigned sockets = 2;
    unsigned coresPerSocket = 10;
    unsigned dramGb = 144;
    unsigned dramMhz = 1333;
    double nicGbps = 10.0;
    std::string nicModel = "Simulated 10GbE, 4-bit RSS hash";
    std::string kernel = "simulated-3.10";
    /** @} */

    /** @name Frequency domain
     * @{
     */
    double minFreqGhz = 1.2;   ///< Lowest DVFS step.
    double baseFreqGhz = 2.2;  ///< Nominal frequency.
    double turboFreqGhz = 3.0; ///< Single-core Turbo Boost ceiling.
    /** @} */

    /** @name Ondemand governor model
     * The governor samples per-core utilization every samplingPeriod;
     * crossing the thresholds changes the frequency step, and each
     * change stalls the core while the voltage/PLL settles.
     * @{
     */
    SimDuration governorSamplingPeriod = milliseconds(1);
    double governorUpThreshold = 0.30;
    double governorDownThreshold = 0.15;
    SimDuration frequencyTransitionStall = microseconds(55);
    /** @} */

    /** @name Turbo Boost thermal model
     * A machine-wide token bucket of turbo-nanoseconds. Refill scales
     * with thermal headroom; running the package hot (performance
     * governor keeps every core at nominal voltage) makes each turbo
     * nanosecond cost more headroom.
     * @{
     */
    double thermalCapacityUs = 2000.0; ///< Bucket size, turbo-us.
    double thermalRefillRate = 1.10;   ///< Turbo-ns earned per wall-ns.
    double performanceGovernorTurboCost = 2.6; ///< Token cost multiplier.
    /** @} */

    /** @name NUMA memory model
     * Each request touches its connection buffer `bufferAccesses`
     * times; each touch stalls for the local or remote latency
     * depending on where the buffer page lives.
     * @{
     */
    double localMemStallNs = 90.0;
    double remoteMemStallNs = 175.0;
    unsigned bufferAccesses = 40;
    /** @} */

    /** @name NIC interrupt handling
     * @{
     */
    unsigned nicHashBits = 4; ///< 2^bits interrupt queues (paper: 16).
    double irqCycles = 3000.0; ///< Cycles to handle one interrupt.
    /** Extra worker-side stall when the interrupt was handled on the
     *  other socket (request data must cross the interconnect). */
    SimDuration crossSocketTransfer = nanoseconds(900);
    /** @} */

    /** @name Software shape
     * Worker threads are pinned to distinct cores on socket 0 (memory
     * node 0), matching the deployment the NUMA factor levels assume.
     * @{
     */
    unsigned workerThreads = 4;
    /** @} */

    /** Total cores across all sockets. */
    unsigned totalCores() const { return sockets * coresPerSocket; }

    /** Number of NIC interrupt queues (2^nicHashBits). */
    unsigned nicQueues() const { return 1u << nicHashBits; }

    /** Socket that owns core @p coreId. */
    unsigned socketOf(unsigned coreId) const
    {
        return coreId / coresPerSocket;
    }
};

} // namespace hw
} // namespace treadmill

#endif // TREADMILL_HW_MACHINE_SPEC_H_
