#include "hw/core.h"

#include <utility>

#include "util/logging.h"

namespace treadmill {
namespace hw {

Core::Core(sim::Simulation &sim_, unsigned coreId, DurationFn durationOf_)
    : sim(sim_), id(coreId), durationOf(std::move(durationOf_))
{
    TM_ASSERT(durationOf != nullptr, "core needs a duration model");
}

void
Core::submit(WorkItem item)
{
    queue.push_back(std::move(item));
    if (!executing)
        startNext();
}

void
Core::startNext()
{
    TM_ASSERT(!queue.empty(), "startNext on an empty core queue");
    executing = true;
    WorkItem item = std::move(queue.front());
    queue.pop_front();

    const SimTime start = sim.now();
    const SimDuration duration = durationOf(id, item);
    totalBusy += duration;

    currentStart = start;
    currentDone = std::move(item.done);
    sim.schedule(duration, [this] {
        ++completedCount;
        executing = false;
        // Move the completion state to locals first: starting the next
        // item overwrites the slots.
        const SimTime started = currentStart;
        WorkItem::DoneFn done = std::move(currentDone);
        // Start the next queued item before invoking the callback: the
        // callback may submit new work to this core, and it must queue
        // behind work that was already waiting.
        if (!queue.empty())
            startNext();
        if (done)
            done(started, sim.now());
    });
}

double
Core::utilization() const
{
    const SimTime elapsed = sim.now();
    if (elapsed == 0)
        return 0.0;
    return static_cast<double>(
               std::min<SimDuration>(totalBusy, elapsed)) /
           static_cast<double>(elapsed);
}

} // namespace hw
} // namespace treadmill
