/**
 * @file
 * The assembled server machine: cores, DVFS, Turbo/thermal, NIC, NUMA.
 *
 * Machine composes the per-feature models into one system under test.
 * Server software (the Memcached and mcrouter models) submits CPU work
 * to cores through Machine, which applies the active HardwareConfig:
 * frequency steps and transition stalls (DVFS governor), thermal-
 * limited Turbo residency, NUMA memory stalls, and RSS interrupt
 * steering.
 */

#ifndef TREADMILL_HW_MACHINE_H_
#define TREADMILL_HW_MACHINE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "hw/core.h"
#include "hw/frequency.h"
#include "hw/hardware_config.h"
#include "hw/machine_spec.h"
#include "hw/nic.h"
#include "hw/placement.h"
#include "hw/thermal.h"
#include "sim/simulation.h"
#include "util/rng.h"
#include "util/types.h"

namespace treadmill {
namespace hw {

/** One configured server machine inside a simulation. */
class Machine
{
  public:
    /**
     * @param sim Owning simulation.
     * @param spec Static hardware description (copied).
     * @param config Factor levels for this run.
     * @param runSeed Run identity; drives placement (hysteresis) and
     *        the machine's internal stochastic draws.
     */
    Machine(sim::Simulation &sim, const MachineSpec &spec,
            const HardwareConfig &config, std::uint64_t runSeed);

    Machine(const Machine &) = delete;
    Machine &operator=(const Machine &) = delete;

    /** Submit CPU work to core @p coreId. */
    void submit(unsigned coreId, WorkItem item);

    /** @name Accessors
     * @{
     */
    const MachineSpec &spec() const { return machineSpec; }
    const HardwareConfig &config() const { return hwConfig; }
    const PlacementState &placement() const { return placementState; }
    const Nic &nic() const { return nicModel; }
    /** Mutable NIC access for the fault injector's storm hook. */
    Nic &mutableNic() { return nicModel; }
    sim::Simulation &simulation() { return sim; }
    /** @} */

    /**
     * Memory-stall time for one request touching the buffer of
     * @p connectionId, under the active NUMA policy and this run's
     * buffer placement.
     */
    SimDuration memoryStall(std::uint64_t connectionId);

    /** Core hosting worker thread @p workerIdx. */
    unsigned workerCore(unsigned workerIdx) const;

    /** Worker thread index serving @p connectionId. */
    unsigned workerOfConnection(std::uint64_t connectionId) const;

    /**
     * Mean busy fraction of the worker cores (the paper's "server
     * utilization" knob).
     */
    double workerUtilization() const;

    /** Busy fraction of core @p coreId. */
    double coreUtilization(unsigned coreId) const;

    /** Queue depth of core @p coreId. */
    std::size_t coreQueueDepth(unsigned coreId) const;

    /** Total DVFS transitions across all cores (diagnostics). */
    std::uint64_t totalFrequencyTransitions() const;

    /**
     * Expected service seconds per worker-request at the nominal
     * frequency under this config's *mean* memory behaviour; used by
     * harnesses to translate a target utilization into a request rate.
     *
     * @param cyclesPerRequest Frequency-scaled worker cycles.
     */
    double expectedServiceSeconds(double cyclesPerRequest) const;

    /** Compute-only component of expectedServiceSeconds(). */
    double expectedComputeSeconds(double cyclesPerRequest) const;

    /** Mean NUMA memory-stall seconds per request under this config. */
    double expectedMemoryStallSeconds() const;

  private:
    /** Wall-clock duration model for one work item on one core. */
    SimDuration durationOf(unsigned coreId, const WorkItem &item);

    /** Periodic ondemand-governor sampling tick. */
    void governorTick();

    sim::Simulation &sim;
    MachineSpec machineSpec;
    HardwareConfig hwConfig;
    PlacementState placementState;
    Nic nicModel;
    ThermalModel thermal;
    Rng rng;
    std::vector<CoreFrequency> coreFreq;
    std::vector<std::unique_ptr<Core>> cores;
};

} // namespace hw
} // namespace treadmill

#endif // TREADMILL_HW_MACHINE_H_
