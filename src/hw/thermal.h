/**
 * @file
 * Machine-wide thermal headroom governing Turbo Boost residency.
 *
 * Turbo and the DVFS governor "interact indirectly through competing
 * for the thermal headroom" (paper S I). ThermalModel is a token
 * bucket of turbo-nanoseconds: capacity is the package's thermal mass,
 * refill is its cooling rate, and running with the performance
 * governor (all cores held at nominal voltage) raises the cost of
 * every turbo nanosecond. At high utilization many cores bid for the
 * same bucket, so per-request turbo residency falls -- reproducing
 * Finding 8's load dependence.
 */

#ifndef TREADMILL_HW_THERMAL_H_
#define TREADMILL_HW_THERMAL_H_

#include "util/types.h"

namespace treadmill {
namespace hw {

/** Token bucket of turbo-nanoseconds with continuous refill. */
class ThermalModel
{
  public:
    /**
     * @param capacityNs Bucket capacity (turbo-ns of stored headroom).
     * @param refillPerNs Turbo-ns earned per wall-clock ns.
     */
    ThermalModel(double capacityNs, double refillPerNs);

    /**
     * Request up to @p wantNs of turbo residency at time @p now.
     *
     * @param costMultiplier Headroom cost per granted ns (>1 when the
     *        package is already running hot).
     * @return Granted turbo-ns, in [0, wantNs].
     */
    double request(SimTime now, double wantNs, double costMultiplier);

    /** Currently stored headroom (after refill to @p now). */
    double available(SimTime now);

    /** Reset to a full bucket at time zero. */
    void reset();

  private:
    /** Apply refill up to @p now. */
    void refillTo(SimTime now);

    double capacity;
    double refillRate;
    double tokens;
    SimTime lastUpdate = 0;
};

} // namespace hw
} // namespace treadmill

#endif // TREADMILL_HW_THERMAL_H_
