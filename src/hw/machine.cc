#include "hw/machine.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace treadmill {
namespace hw {

Machine::Machine(sim::Simulation &sim_, const MachineSpec &spec_,
                 const HardwareConfig &config_, std::uint64_t runSeed)
    : sim(sim_), machineSpec(spec_), hwConfig(config_),
      placementState(machineSpec, hwConfig, runSeed),
      nicModel(machineSpec, hwConfig, placementState),
      thermal(machineSpec.thermalCapacityUs * 1e3,
              machineSpec.thermalRefillRate),
      rng(Rng(0x5bd1e995cafebabeull).substream(runSeed))
{
    coreFreq.reserve(machineSpec.totalCores());
    cores.reserve(machineSpec.totalCores());
    for (unsigned c = 0; c < machineSpec.totalCores(); ++c) {
        coreFreq.emplace_back(machineSpec, hwConfig.dvfs);
        cores.push_back(std::make_unique<Core>(
            sim, c, [this](unsigned coreId, const WorkItem &item) {
                return durationOf(coreId, item);
            }));
    }
    if (hwConfig.dvfs == DvfsGovernor::Ondemand) {
        sim.schedule(machineSpec.governorSamplingPeriod,
                     [this] { governorTick(); });
    }
}

void
Machine::governorTick()
{
    const double window =
        static_cast<double>(machineSpec.governorSamplingPeriod);
    for (auto &freq : coreFreq)
        freq.sampleWindow(window);
    sim.schedule(machineSpec.governorSamplingPeriod,
                 [this] { governorTick(); });
}

void
Machine::submit(unsigned coreId, WorkItem item)
{
    TM_ASSERT(coreId < cores.size(), "core id out of range");
    cores[coreId]->submit(std::move(item));
}

SimDuration
Machine::durationOf(unsigned coreId, const WorkItem &item)
{
    CoreFrequency &freq = coreFreq[coreId];

    // Any pending DVFS transition stalls the core first.
    const SimDuration transitionStall = freq.takePendingStall();

    const double ghz = freq.currentGhz();
    double computeNs = item.cycles / ghz;

    if (hwConfig.turbo == TurboMode::On && item.allowTurbo &&
        freq.step() == FreqStep::Base) {
        // Ask the thermal pool for turbo residency covering this item.
        const double turboNs = item.cycles / machineSpec.turboFreqGhz;
        const double cost =
            hwConfig.dvfs == DvfsGovernor::Performance
                ? machineSpec.performanceGovernorTurboCost
                : 1.0;
        const double granted = thermal.request(sim.now(), turboNs, cost);
        const double phi = turboNs > 0.0 ? granted / turboNs : 0.0;
        computeNs = phi * turboNs + (1.0 - phi) * computeNs;
    }

    const SimDuration total =
        transitionStall + item.fixedStall +
        static_cast<SimDuration>(std::llround(std::max(1.0, computeNs)));
    freq.accountBusy(static_cast<double>(total));
    return total;
}

SimDuration
Machine::memoryStall(std::uint64_t connectionId)
{
    const double local = machineSpec.localMemStallNs;
    const double remote = machineSpec.remoteMemStallNs;
    const auto accesses =
        static_cast<double>(machineSpec.bufferAccesses);

    double stallNs = 0.0;
    if (hwConfig.numa == NumaPolicy::Interleave) {
        // Page-interleaved buffer: roughly half the touches go remote;
        // the binomial spread is approximated with a normal draw.
        const double p = placementState.perAccessRemoteProbability();
        const double meanRemote = accesses * p;
        const double sdRemote = std::sqrt(accesses * p * (1.0 - p));
        // Box-Muller using the machine's private stream.
        const double u1 = rng.nextDoublePositive();
        const double u2 = rng.nextDouble();
        const double z =
            std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
        const double nRemote = std::clamp(meanRemote + sdRemote * z, 0.0,
                                          accesses);
        stallNs = (accesses - nRemote) * local + nRemote * remote;
    } else {
        stallNs = placementState.bufferIsLocal(connectionId)
                      ? accesses * local
                      : accesses * remote;
    }
    return static_cast<SimDuration>(stallNs);
}

unsigned
Machine::workerCore(unsigned workerIdx) const
{
    return placementState.workerCore(workerIdx);
}

unsigned
Machine::workerOfConnection(std::uint64_t connectionId) const
{
    return placementState.workerOfConnection(connectionId);
}

double
Machine::workerUtilization() const
{
    double sum = 0.0;
    for (unsigned w = 0; w < machineSpec.workerThreads; ++w)
        sum += cores[workerCore(w)]->utilization();
    return sum / static_cast<double>(machineSpec.workerThreads);
}

double
Machine::coreUtilization(unsigned coreId) const
{
    TM_ASSERT(coreId < cores.size(), "core id out of range");
    return cores[coreId]->utilization();
}

std::size_t
Machine::coreQueueDepth(unsigned coreId) const
{
    TM_ASSERT(coreId < cores.size(), "core id out of range");
    return cores[coreId]->queueDepth();
}

std::uint64_t
Machine::totalFrequencyTransitions() const
{
    std::uint64_t total = 0;
    for (const auto &freq : coreFreq)
        total += freq.transitions();
    return total;
}

double
Machine::expectedComputeSeconds(double cyclesPerRequest) const
{
    // At the nominal step, ignoring turbo (conservative for sizing).
    return cyclesPerRequest / machineSpec.baseFreqGhz * 1e-9;
}

double
Machine::expectedMemoryStallSeconds() const
{
    const double local = machineSpec.localMemStallNs;
    const double remote = machineSpec.remoteMemStallNs;
    const auto accesses =
        static_cast<double>(machineSpec.bufferAccesses);
    double memNs = 0.0;
    if (hwConfig.numa == NumaPolicy::Interleave) {
        const double p = placementState.perAccessRemoteProbability();
        memNs = accesses * ((1.0 - p) * local + p * remote);
    } else {
        const double pLocal = placementState.localBufferFraction();
        memNs = accesses * (pLocal * local + (1.0 - pLocal) * remote);
    }
    return memNs * 1e-9;
}

double
Machine::expectedServiceSeconds(double cyclesPerRequest) const
{
    return expectedComputeSeconds(cyclesPerRequest) +
           expectedMemoryStallSeconds();
}

} // namespace hw
} // namespace treadmill
