#include "hw/thermal.h"

#include <algorithm>

#include "util/error.h"
#include "util/logging.h"

namespace treadmill {
namespace hw {

ThermalModel::ThermalModel(double capacityNs, double refillPerNs)
    : capacity(capacityNs), refillRate(refillPerNs), tokens(capacityNs)
{
    if (!(capacityNs > 0.0) || !(refillPerNs > 0.0))
        throw ConfigError("thermal capacity and refill must be positive");
}

void
ThermalModel::refillTo(SimTime now)
{
    TM_ASSERT(now >= lastUpdate, "thermal model time went backwards");
    tokens = std::min(capacity,
                      tokens + refillRate *
                                   static_cast<double>(now - lastUpdate));
    lastUpdate = now;
}

double
ThermalModel::request(SimTime now, double wantNs, double costMultiplier)
{
    TM_ASSERT(costMultiplier > 0.0, "turbo cost must be positive");
    if (wantNs <= 0.0)
        return 0.0;
    refillTo(now);
    const double granted =
        std::min(wantNs, tokens / costMultiplier);
    tokens -= granted * costMultiplier;
    return granted;
}

double
ThermalModel::available(SimTime now)
{
    refillTo(now);
    return tokens;
}

void
ThermalModel::reset()
{
    tokens = capacity;
    lastUpdate = 0;
}

} // namespace hw
} // namespace treadmill
