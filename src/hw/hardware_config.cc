#include "hw/hardware_config.h"

#include "util/logging.h"

namespace treadmill {
namespace hw {

std::array<double, 4>
HardwareConfig::levels() const
{
    return {numaHigh() ? 1.0 : 0.0, turboHigh() ? 1.0 : 0.0,
            dvfsHigh() ? 1.0 : 0.0, nicHigh() ? 1.0 : 0.0};
}

HardwareConfig
HardwareConfig::fromIndex(unsigned index)
{
    TM_ASSERT(index < 16, "hardware config index out of range");
    HardwareConfig cfg;
    cfg.numa = (index & 1u) ? NumaPolicy::Interleave : NumaPolicy::SameNode;
    cfg.turbo = (index & 2u) ? TurboMode::On : TurboMode::Off;
    cfg.dvfs = (index & 4u) ? DvfsGovernor::Performance
                            : DvfsGovernor::Ondemand;
    cfg.nic = (index & 8u) ? NicAffinity::AllNodes : NicAffinity::SameNode;
    return cfg;
}

unsigned
HardwareConfig::index() const
{
    return (numaHigh() ? 1u : 0u) | (turboHigh() ? 2u : 0u) |
           (dvfsHigh() ? 4u : 0u) | (nicHigh() ? 8u : 0u);
}

std::string
HardwareConfig::label() const
{
    std::string out;
    out += numaHigh() ? "numa-high" : "numa-low";
    out += turboHigh() ? ",turbo-high" : ",turbo-low";
    out += dvfsHigh() ? ",dvfs-high" : ",dvfs-low";
    out += nicHigh() ? ",nic-high" : ",nic-low";
    return out;
}

std::string
HardwareConfig::bits() const
{
    std::string out;
    for (double level : levels())
        out += level > 0.5 ? '1' : '0';
    return out;
}

const std::vector<std::string> &
factorNames()
{
    static const std::vector<std::string> names{"numa", "turbo", "dvfs",
                                                "nic"};
    return names;
}

std::vector<HardwareConfig>
allConfigs()
{
    std::vector<HardwareConfig> configs;
    configs.reserve(16);
    for (unsigned i = 0; i < 16; ++i)
        configs.push_back(HardwareConfig::fromIndex(i));
    return configs;
}

} // namespace hw
} // namespace treadmill
