/**
 * @file
 * Per-core DVFS state driven by a sampling governor.
 *
 * The ondemand governor samples each core's utilization once per
 * sampling period and moves the core between the minimum and nominal
 * frequency steps; every step change stalls the core while voltage and
 * PLL settle. The performance governor pins the core at nominal. This
 * is the mechanism behind the paper's Findings 3 and 4: at low load
 * cores sit at the low step (or oscillate across the thresholds,
 * paying transition stalls), while at high load they stay at nominal.
 */

#ifndef TREADMILL_HW_FREQUENCY_H_
#define TREADMILL_HW_FREQUENCY_H_

#include "hw/hardware_config.h"
#include "hw/machine_spec.h"
#include "util/types.h"

namespace treadmill {
namespace hw {

/** Discrete frequency steps the governor selects between. */
enum class FreqStep { Min, Base };

/** DVFS state of a single core. */
class CoreFrequency
{
  public:
    /**
     * @param spec Machine constants (steps, thresholds, stall).
     * @param governor Active governor for this run.
     */
    CoreFrequency(const MachineSpec &spec, DvfsGovernor governor);

    /** Current frequency step. */
    FreqStep step() const { return current; }

    /** Current operating frequency in GHz. */
    double currentGhz() const;

    /**
     * Record @p busyNs of execution inside the current sampling window
     * (the governor's utilization estimator input).
     */
    void accountBusy(double busyNs) { windowBusyNs += busyNs; }

    /**
     * Close a sampling window of length @p windowNs and let the
     * governor pick the next step.
     *
     * @return true when the step changed (a transition stall is now
     *         pending and will be charged to the next execution).
     */
    bool sampleWindow(double windowNs);

    /**
     * Take (and clear) the pending transition stall to charge to the
     * next work executed on this core.
     */
    SimDuration takePendingStall();

    /** Total frequency transitions so far (diagnostics). */
    std::uint64_t transitions() const { return transitionCount; }

  private:
    const MachineSpec &spec;
    DvfsGovernor governor;
    FreqStep current;
    double windowBusyNs = 0.0;
    SimDuration pendingStall = 0;
    std::uint64_t transitionCount = 0;
};

} // namespace hw
} // namespace treadmill

#endif // TREADMILL_HW_FREQUENCY_H_
