#include "hw/frequency.h"

#include <algorithm>

#include "util/logging.h"

namespace treadmill {
namespace hw {

CoreFrequency::CoreFrequency(const MachineSpec &spec_,
                             DvfsGovernor governor_)
    : spec(spec_), governor(governor_)
{
    // Performance pins nominal; ondemand boots at the low step and
    // ramps up once it observes utilization.
    current = governor == DvfsGovernor::Performance ? FreqStep::Base
                                                    : FreqStep::Min;
}

double
CoreFrequency::currentGhz()
const
{
    return current == FreqStep::Base ? spec.baseFreqGhz
                                     : spec.minFreqGhz;
}

bool
CoreFrequency::sampleWindow(double windowNs)
{
    if (governor == DvfsGovernor::Performance) {
        windowBusyNs = 0.0;
        return false;
    }
    const double utilization =
        windowNs > 0.0 ? std::min(1.0, windowBusyNs / windowNs) : 0.0;
    windowBusyNs = 0.0;

    FreqStep target = current;
    if (utilization > spec.governorUpThreshold)
        target = FreqStep::Base;
    else if (utilization < spec.governorDownThreshold)
        target = FreqStep::Min;

    if (target == current)
        return false;
    current = target;
    pendingStall += spec.frequencyTransitionStall;
    ++transitionCount;
    return true;
}

SimDuration
CoreFrequency::takePendingStall()
{
    const SimDuration stall = pendingStall;
    pendingStall = 0;
    return stall;
}

} // namespace hw
} // namespace treadmill
