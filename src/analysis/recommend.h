/**
 * @file
 * Configuration recommendation and before/after evaluation (Fig 12).
 *
 * The attribution model predicts every factorial cell's quantile
 * latency; the recommendation is the argmin. The improvement
 * evaluation replays the paper's Fig 12 protocol: many runs under
 * randomly drawn configurations ("before") against the same number of
 * runs under the recommended configuration ("after"), comparing both
 * the level and the run-to-run variance of the tail.
 */

#ifndef TREADMILL_ANALYSIS_RECOMMEND_H_
#define TREADMILL_ANALYSIS_RECOMMEND_H_

#include <cstdint>
#include <vector>

#include "analysis/attribution.h"
#include "core/experiment.h"
#include "hw/hardware_config.h"

namespace treadmill {
namespace analysis {

/** Predicted latency of one configuration cell. */
struct ConfigPrediction {
    hw::HardwareConfig config;
    double predictedUs = 0.0;
};

/** All 16 cells ranked by predicted tau-quantile (best first). */
std::vector<ConfigPrediction>
rankConfigurations(const AttributionResult &attribution, double tau);

/** The predicted-best configuration for quantile tau. */
hw::HardwareConfig bestConfiguration(
    const AttributionResult &attribution, double tau);

/** One arm of the Fig 12 comparison. */
struct ImprovementArm {
    std::vector<double> perRunQuantileUs;
    double mean = 0.0;
    double stddev = 0.0;
};

/** Outcome of the before/after evaluation. */
struct ImprovementResult {
    ImprovementArm before; ///< Random configurations.
    ImprovementArm after;  ///< Recommended configuration.
    hw::HardwareConfig recommended;
    double tau = 0.99;

    /** Fractional reduction of the mean tail latency. */
    double latencyReduction() const;

    /** Fractional reduction of the run-to-run standard deviation. */
    double variabilityReduction() const;
};

/** Controls for the improvement evaluation. */
struct ImprovementParams {
    core::ExperimentParams base;
    double tau = 0.99;
    /** Runs per arm (paper: 100). */
    unsigned runsPerArm = 100;
    core::AggregationKind aggregation =
        core::AggregationKind::PerInstance;
    std::uint64_t seed = 1;
};

/**
 * Run the Fig 12 protocol against a fitted attribution model.
 */
ImprovementResult evaluateImprovement(
    const AttributionResult &attribution,
    const ImprovementParams &params);

} // namespace analysis
} // namespace treadmill

#endif // TREADMILL_ANALYSIS_RECOMMEND_H_
