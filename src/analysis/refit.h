/**
 * @file
 * Re-analysis straight from the run store -- no simulation.
 *
 * Every entry point here consumes a store::StudyReader and produces
 * the same artifacts the live pipeline produces, bit-identically:
 * refitFromStore() re-fits the factorial quantile-regression models
 * from the archived responses (or, for taus the archive did not
 * snapshot, from the archived latency reservoirs), and
 * provenanceRankFromStore() re-ranks tail-provenance segment shares
 * from the archived per-run rows. "Tell-Tale Tail Latencies"
 * (PAPERS.md) is the motivation: conclusions should be re-examinable
 * from the raw persisted samples, not trusted to one summary pass.
 */

#ifndef TREADMILL_ANALYSIS_REFIT_H_
#define TREADMILL_ANALYSIS_REFIT_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "analysis/attribution.h"
#include "store/reader.h"

namespace treadmill {
namespace analysis {

/** The archive's factorial data set, materialized for fitting. */
struct StoredObservations {
    regress::FactorialDesign design;
    std::vector<std::vector<double>> levels;
    /** tau -> one response per run, in run-sequence order. */
    std::map<double, std::vector<double>> responses;
    std::vector<std::uint64_t> seeds;
};

/**
 * Load every run's factor levels and responses for @p quantiles.
 * Taus the archive snapshotted are read back exactly (bit-identical
 * doubles); other taus are computed from the archived reservoir.
 *
 * @throws store errors on unreadable runs; ConfigError when a
 *         requested tau is neither snapshotted nor computable.
 */
StoredObservations loadObservations(
    const store::StudyReader &study,
    const std::vector<double> &quantiles);

/**
 * Re-fit the factorial quantile-regression models from the archive.
 * Given the same FactorialFitParams that produced a live fit, the
 * coefficients are bit-identical to that fit -- the acceptance bar
 * for refit-from-archive.
 */
std::vector<QuantileModel> refitFromStore(
    const store::StudyReader &study,
    const FactorialFitParams &params);

/** One re-ranked provenance segment. */
struct StoredProvenanceRank {
    std::uint64_t kind = 0; ///< obs::SegmentKind as stored.
    std::string name;       ///< Human-readable segment name.
    double meanUs = 0.0;    ///< Mean over contributing runs.
    double share = 0.0;     ///< Mean share over contributing runs.
    std::size_t runs = 0;   ///< Runs carrying this segment.
};

/**
 * Aggregate the archived tail-provenance rows across runs and re-rank
 * segments (largest mean share first) per tau. Runs without
 * provenance columns are skipped; the result is empty when no run
 * carried them.
 */
std::map<double, std::vector<StoredProvenanceRank>>
provenanceRankFromStore(const store::StudyReader &study);

} // namespace analysis
} // namespace treadmill

#endif // TREADMILL_ANALYSIS_REFIT_H_
