#include "analysis/screening.h"

#include "exec/parallel_for.h"
#include "stats/hypothesis.h"
#include "stats/summary.h"
#include "util/error.h"
#include "util/strings.h"

namespace treadmill {
namespace analysis {

std::vector<FactorScreen>
screenFactors(const std::vector<Observation> &observations,
              const ScreeningParams &params)
{
    if (observations.empty())
        throw NumericalError("screening needs observations");

    const Rng rng = Rng(0x5c8ee71e5eedull).substream(params.seed);

    // Each factor's permutation test reads the shared observations and
    // draws from its own index-derived substream, so the screens run
    // concurrently into index-addressed slots.
    std::vector<FactorScreen> screens(hw::factorNames().size());
    exec::parallelFor(
        params.parallelism, screens.size(), [&](std::size_t f) {
            std::vector<double> low;
            std::vector<double> high;
            for (const Observation &obs : observations) {
                const auto it = obs.quantileUs.find(params.tau);
                if (it == obs.quantileUs.end()) {
                    throw NumericalError(strprintf(
                        "observation missing tau=%g", params.tau));
                }
                const auto levels = obs.config.levels();
                (levels[f] > 0.5 ? high : low).push_back(it->second);
            }
            if (low.empty() || high.empty()) {
                throw NumericalError(
                    "factor '" + hw::factorNames()[f] +
                    "' never varies in the observations");
            }

            FactorScreen screen;
            screen.name = hw::factorNames()[f];
            screen.effectUs = stats::mean(high) - stats::mean(low);
            Rng testRng = rng.substream(f + 1);
            const auto test = stats::permutationTest(
                high, low, params.permutations, testRng);
            screen.pValue = test.pValue;
            screen.significant = test.pValue < params.significance;
            screens[f] = std::move(screen);
        });
    return screens;
}

} // namespace analysis
} // namespace treadmill
