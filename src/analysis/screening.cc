#include "analysis/screening.h"

#include "stats/hypothesis.h"
#include "stats/summary.h"
#include "util/error.h"
#include "util/strings.h"

namespace treadmill {
namespace analysis {

std::vector<FactorScreen>
screenFactors(const std::vector<Observation> &observations,
              const ScreeningParams &params)
{
    if (observations.empty())
        throw NumericalError("screening needs observations");

    std::vector<FactorScreen> screens;
    Rng rng = Rng(0x5c8ee71e5eedull).substream(params.seed);

    for (std::size_t f = 0; f < hw::factorNames().size(); ++f) {
        std::vector<double> low;
        std::vector<double> high;
        for (const Observation &obs : observations) {
            const auto it = obs.quantileUs.find(params.tau);
            if (it == obs.quantileUs.end()) {
                throw NumericalError(strprintf(
                    "observation missing tau=%g", params.tau));
            }
            const auto levels = obs.config.levels();
            (levels[f] > 0.5 ? high : low).push_back(it->second);
        }
        if (low.empty() || high.empty()) {
            throw NumericalError(
                "factor '" + hw::factorNames()[f] +
                "' never varies in the observations");
        }

        FactorScreen screen;
        screen.name = hw::factorNames()[f];
        screen.effectUs = stats::mean(high) - stats::mean(low);
        Rng testRng = rng.substream(f + 1);
        const auto test = stats::permutationTest(
            high, low, params.permutations, testRng);
        screen.pValue = test.pValue;
        screen.significant = test.pValue < params.significance;
        screens.push_back(std::move(screen));
    }
    return screens;
}

} // namespace analysis
} // namespace treadmill
