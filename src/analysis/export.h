/**
 * @file
 * Machine-readable (JSON) export of experiment and attribution
 * results.
 *
 * Treadmill is a measurement tool; its outputs feed dashboards,
 * regression detectors, and notebooks. These exporters serialize the
 * result structures to the same JSON dialect the workload configs use,
 * so a run's inputs and outputs round-trip through one format.
 */

#ifndef TREADMILL_ANALYSIS_EXPORT_H_
#define TREADMILL_ANALYSIS_EXPORT_H_

#include "analysis/attribution.h"
#include "analysis/recommend.h"
#include "analysis/report.h"
#include "core/experiment.h"
#include "util/json.h"

namespace treadmill {
namespace analysis {

/**
 * Serialize one experiment result: throughput, utilization,
 * per-instance quantiles, aggregated quantiles, and ground-truth
 * quantiles. Raw sample vectors are summarized (counts + quantiles),
 * not dumped.
 */
json::Value toJson(const core::ExperimentResult &result);

/**
 * Serialize an attribution result: per-quantile models with term
 * estimates, standard errors, p-values, and pseudo-R^2.
 */
json::Value toJson(const AttributionResult &attribution);

/** Serialize a bare fitted-model set (any factorial design). */
json::Value toJson(const std::vector<QuantileModel> &models);

/** Serialize a Fig 12-style improvement evaluation. */
json::Value toJson(const ImprovementResult &result);

/**
 * Serialize a per-component latency decomposition: one entry per path
 * component with mean/quantiles/share, plus the end-to-end reference.
 */
json::Value toJson(const DecompositionReport &report);

} // namespace analysis
} // namespace treadmill

#endif // TREADMILL_ANALYSIS_EXPORT_H_
