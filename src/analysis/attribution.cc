#include "analysis/attribution.h"

#include <algorithm>

#include "regress/pseudo_r2.h"
#include "util/error.h"
#include "util/logging.h"
#include "util/strings.h"

namespace treadmill {
namespace analysis {

const QuantileModel &
AttributionResult::model(double tau) const
{
    for (const QuantileModel &m : models) {
        if (m.tau == tau)
            return m;
    }
    throw NumericalError(strprintf("no model fitted for tau=%g", tau));
}

double
AttributionResult::predict(double tau,
                           const hw::HardwareConfig &config) const
{
    const QuantileModel &m = model(tau);
    const auto levels = config.levels();
    const regress::Vec row = design.designRow(
        std::vector<double>(levels.begin(), levels.end()));
    return m.fit.predict(row);
}

double
AttributionResult::averageFactorImpact(double tau,
                                       std::size_t factorIdx) const
{
    TM_ASSERT(factorIdx < 4, "factor index out of range");
    // Average predict(high) - predict(low) over all 8 settings of the
    // other factors.
    double total = 0.0;
    unsigned count = 0;
    for (unsigned others = 0; others < 16; ++others) {
        if (others & (1u << factorIdx))
            continue; // enumerate with this factor low
        const hw::HardwareConfig low = hw::HardwareConfig::fromIndex(
            others);
        const hw::HardwareConfig high = hw::HardwareConfig::fromIndex(
            others | (1u << factorIdx));
        total += predict(tau, high) - predict(tau, low);
        ++count;
    }
    return total / static_cast<double>(count);
}

double
AttributionResult::averageFactorImpactGiven(double tau,
                                            std::size_t factorIdx,
                                            std::size_t givenIdx,
                                            bool givenHigh) const
{
    TM_ASSERT(factorIdx < 4 && givenIdx < 4, "factor index out of range");
    TM_ASSERT(factorIdx != givenIdx,
              "conditioning factor must differ from the switched one");
    double total = 0.0;
    unsigned count = 0;
    for (unsigned others = 0; others < 16; ++others) {
        if (others & (1u << factorIdx))
            continue;
        const bool givenIsHigh = (others & (1u << givenIdx)) != 0;
        if (givenIsHigh != givenHigh)
            continue;
        const hw::HardwareConfig low =
            hw::HardwareConfig::fromIndex(others);
        const hw::HardwareConfig high = hw::HardwareConfig::fromIndex(
            others | (1u << factorIdx));
        total += predict(tau, high) - predict(tau, low);
        ++count;
    }
    return total / static_cast<double>(count);
}

std::vector<Observation>
collectObservations(const AttributionParams &params)
{
    if (params.repsPerConfig == 0)
        throw ConfigError("attribution needs at least one rep per cell");

    // Build the experiment list: repsPerConfig copies of each of the
    // 16 cells, then shuffle so consecutive runs exercise random
    // permutations of the configurations (preserving independence,
    // paper S V-A).
    std::vector<unsigned> cells;
    cells.reserve(16u * params.repsPerConfig);
    for (unsigned rep = 0; rep < params.repsPerConfig; ++rep)
        for (unsigned cfg = 0; cfg < 16; ++cfg)
            cells.push_back(cfg);

    Rng rng = Rng(0xa77b1b071017ull).substream(params.seed);
    for (std::size_t i = cells.size() - 1; i > 0; --i) {
        const auto j = static_cast<std::size_t>(rng.nextBelow(i + 1));
        std::swap(cells[i], cells[j]);
    }

    // The paper drives every configuration at the same request rate
    // (100k/800k RPS): derive the rate once from the base config and
    // hold it constant, so utilization differences between configs are
    // part of the measured effect.
    core::ExperimentParams reference = params.base;
    reference.seed = params.seed;
    const double fixedRps = core::deriveRequestRate(reference);

    // Every run's params (and seed) depend only on its index, so the
    // whole sweep can fan out across threads; results come back in
    // index-addressed slots and the Observation set is identical for
    // any Parallelism setting.
    std::vector<core::ExperimentParams> runs;
    runs.reserve(cells.size());
    for (std::size_t i = 0; i < cells.size(); ++i) {
        core::ExperimentParams run = params.base;
        run.requestsPerSecond = fixedRps;
        run.config = hw::HardwareConfig::fromIndex(cells[i]);
        run.seed = params.seed * 2654435761ull + i * 97 + 1;
        runs.push_back(std::move(run));
    }
    const std::vector<core::ExperimentResult> outcomes =
        core::runExperiments(runs, params.parallelism,
                             params.progress);

    std::vector<Observation> observations;
    observations.reserve(cells.size());
    for (std::size_t i = 0; i < cells.size(); ++i) {
        Observation obs;
        obs.config = runs[i].config;
        obs.runSeed = runs[i].seed;
        obs.serverUtilization = outcomes[i].serverUtilization;
        for (double tau : params.quantiles) {
            obs.quantileUs[tau] =
                outcomes[i].aggregatedQuantile(tau, params.aggregation);
        }
        observations.push_back(std::move(obs));
    }
    return observations;
}

std::vector<QuantileModel>
fitFactorialModels(const regress::FactorialDesign &design,
                   const std::vector<std::vector<double>> &levels,
                   const std::map<double, std::vector<double>> &responses,
                   const FactorialFitParams &params)
{
    if (levels.empty())
        throw NumericalError("factorial fit needs observations");

    // Assemble the design matrix once; responses differ per tau.
    const regress::Matrix clean = design.designMatrix(levels);

    Rng rng = Rng(0xbead5eedful).substream(params.seed);
    const regress::Matrix x =
        regress::FactorialDesign::perturb(clean, params.perturbSd, rng);

    const auto names = design.termNames();
    std::vector<QuantileModel> models;
    for (double tau : params.quantiles) {
        const auto responseIt = responses.find(tau);
        if (responseIt == responses.end() ||
            responseIt->second.size() != levels.size())
            throw NumericalError(
                strprintf("responses missing or mis-sized for tau=%g",
                          tau));
        const regress::Vec &y = responseIt->second;

        Rng bootRng = rng.substream(
            static_cast<std::uint64_t>(tau * 1e6));
        const regress::QuantRegInference inference =
            regress::bootstrapQuantReg(x, y, tau,
                                       params.bootstrapReplicates,
                                       bootRng);

        QuantileModel model;
        model.tau = tau;
        model.fit = inference.fit;
        model.pseudoR2 = regress::pseudoR2(
            x, y, inference.fit.coefficients, tau);
        for (std::size_t t = 0; t < names.size(); ++t) {
            TermEstimate term;
            term.name = names[t];
            term.estimate = inference.coefficients[t].estimate;
            term.standardError =
                inference.coefficients[t].standardError;
            term.pValue = inference.coefficients[t].pValue;
            model.terms.push_back(std::move(term));
        }
        models.push_back(std::move(model));
    }
    return models;
}

AttributionResult
fitAttribution(const AttributionParams &params,
               std::vector<Observation> observations)
{
    if (observations.empty())
        throw NumericalError("attribution needs observations");

    AttributionResult result;
    result.observations = std::move(observations);

    std::vector<std::vector<double>> levels;
    levels.reserve(result.observations.size());
    for (const Observation &obs : result.observations) {
        const auto l = obs.config.levels();
        levels.emplace_back(l.begin(), l.end());
    }
    std::map<double, std::vector<double>> responses;
    for (double tau : params.quantiles) {
        std::vector<double> y;
        y.reserve(result.observations.size());
        for (const Observation &obs : result.observations) {
            const auto it = obs.quantileUs.find(tau);
            if (it == obs.quantileUs.end())
                throw NumericalError(
                    strprintf("observation missing tau=%g", tau));
            y.push_back(it->second);
        }
        responses.emplace(tau, std::move(y));
    }

    FactorialFitParams fit;
    fit.quantiles = params.quantiles;
    fit.bootstrapReplicates = params.bootstrapReplicates;
    fit.perturbSd = params.perturbSd;
    fit.seed = params.seed;
    result.models =
        fitFactorialModels(result.design, levels, responses, fit);
    return result;
}

AttributionResult
runAttribution(const AttributionParams &params)
{
    return fitAttribution(params, collectObservations(params));
}

} // namespace analysis
} // namespace treadmill
