#include "analysis/capacity.h"

#include <cmath>

#include "stats/hypothesis.h"
#include "stats/summary.h"
#include "util/error.h"
#include "util/strings.h"

namespace treadmill {
namespace analysis {

namespace {

/** Measure the mean tau-quantile at one utilization across seeds. */
CapacityProbe
probe(const CapacityParams &params, double utilization)
{
    // The runs at one probe point are seed-independent, so they fan
    // out across threads; metrics are reduced in run-index order.
    std::vector<core::ExperimentParams> runs;
    runs.reserve(params.runsPerPoint);
    for (unsigned run = 0; run < params.runsPerPoint; ++run) {
        core::ExperimentParams p = params.base;
        p.targetUtilization = utilization;
        p.requestsPerSecond = 0.0; // derive from utilization
        p.seed = params.seed * 6151 + run * 131 + 7;
        runs.push_back(std::move(p));
    }
    const auto results = core::runExperiments(runs, params.parallelism);

    std::vector<double> perRun;
    perRun.reserve(results.size());
    double rps = 0.0;
    for (const core::ExperimentResult &result : results) {
        perRun.push_back(result.aggregatedQuantile(
            params.tau, core::AggregationKind::PerInstance));
        rps = result.targetRps;
    }
    CapacityProbe point;
    point.utilization = utilization;
    point.requestsPerSecond = rps;
    point.latencyUs = stats::mean(perRun);
    point.meetsSlo = point.latencyUs <= params.sloUs;
    return point;
}

/**
 * Two-sided Student-t critical value at 95% confidence, by degrees of
 * freedom. Beyond the table the normal limit applies.
 */
double
tCritical95(std::size_t df)
{
    static const double table[] = {
        0.0,   12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365,
        2.306, 2.262,  2.228, 2.201, 2.179, 2.160, 2.145, 2.131,
        2.120, 2.110,  2.101, 2.093, 2.086, 2.080, 2.074, 2.069,
        2.064, 2.060,  2.056, 2.052, 2.048, 2.045, 2.042};
    if (df == 0)
        return 0.0;
    if (df < sizeof(table) / sizeof(table[0]))
        return table[df];
    return 1.960;
}

} // namespace

void
validateCapacityParams(const CapacityParams &params)
{
    if (!(params.tau > 0.0) || !(params.tau < 1.0))
        throw ConfigError(strprintf(
            "capacity search: tau must lie in (0, 1), got %g",
            params.tau));
    if (!(params.sloUs > 0.0))
        throw ConfigError(strprintf(
            "capacity search: sloUs must be positive, got %g",
            params.sloUs));
    if (!(params.utilizationLow > 0.0))
        throw ConfigError(strprintf(
            "capacity search: utilizationLow must be positive, got %g",
            params.utilizationLow));
    if (!(params.utilizationHigh < 1.0))
        throw ConfigError(strprintf(
            "capacity search: utilizationHigh must be below 1, got %g",
            params.utilizationHigh));
    if (params.utilizationLow >= params.utilizationHigh)
        throw ConfigError(strprintf(
            "capacity search: utilizationLow (%g) must be below "
            "utilizationHigh (%g)",
            params.utilizationLow, params.utilizationHigh));
    if (params.runsPerPoint == 0)
        throw ConfigError(
            "capacity search: runsPerPoint must be nonzero");
    if (params.maxIterations == 0)
        throw ConfigError(
            "capacity search: maxIterations must be nonzero");
}

SloComparison
compareToSlo(const std::vector<double> &perRunQuantileUs, double sloUs,
             double confidence)
{
    if (!(confidence >= 0.5) || !(confidence < 1.0))
        throw ConfigError(strprintf(
            "compareToSlo: confidence must lie in [0.5, 1), got %g",
            confidence));
    SloComparison cmp;
    cmp.runs = perRunQuantileUs.size();
    cmp.mean = stats::mean(perRunQuantileUs);
    if (cmp.runs < 2) {
        cmp.ciLowUs = cmp.ciHighUs = cmp.mean;
        cmp.verdict = SloVerdict::Uncertain;
        return cmp;
    }
    // Scale the tabulated 95% critical value for other confidence
    // levels via the normal-quantile ratio; exact at 0.95, a close
    // approximation elsewhere in the usual 0.8-0.99 range.
    const double sd = stats::stddev(perRunQuantileUs);
    double tcrit = tCritical95(cmp.runs - 1);
    if (confidence != 0.95) {
        const double z95 = 1.959964;
        // Beasley-Springer-Moro-free shortcut: invert the normal CDF
        // by bisection on stats::normalCdf (monotone, cheap).
        const double p = 0.5 + confidence / 2.0;
        double lo = 0.0, hi = 10.0;
        for (int i = 0; i < 60; ++i) {
            const double mid = 0.5 * (lo + hi);
            (stats::normalCdf(mid) < p ? lo : hi) = mid;
        }
        tcrit *= 0.5 * (lo + hi) / z95;
    }
    const double half =
        tcrit * sd / std::sqrt(static_cast<double>(cmp.runs));
    cmp.ciLowUs = cmp.mean - half;
    cmp.ciHighUs = cmp.mean + half;
    if (cmp.ciHighUs <= sloUs)
        cmp.verdict = SloVerdict::Clears;
    else if (cmp.ciLowUs > sloUs)
        cmp.verdict = SloVerdict::Violates;
    else
        cmp.verdict = SloVerdict::Uncertain;
    return cmp;
}

CapacityResult
planCapacity(const CapacityParams &params)
{
    validateCapacityParams(params);

    CapacityResult result;

    // Establish the bracket.
    CapacityProbe low = probe(params, params.utilizationLow);
    result.probes.push_back(low);
    if (!low.meetsSlo) {
        result.infeasible = true;
        return result;
    }
    CapacityProbe high = probe(params, params.utilizationHigh);
    result.probes.push_back(high);
    if (high.meetsSlo) {
        result.maxUtilization = high.utilization;
        result.maxRequestsPerSecond = high.requestsPerSecond;
        result.latencyAtMaxUs = high.latencyUs;
        return result;
    }

    // Bisect: invariant low meets the SLO, high does not.
    CapacityProbe best = low;
    double lo = params.utilizationLow;
    double hi = params.utilizationHigh;
    for (unsigned it = 0; it < params.maxIterations; ++it) {
        const double mid = 0.5 * (lo + hi);
        const CapacityProbe point = probe(params, mid);
        result.probes.push_back(point);
        if (point.meetsSlo) {
            best = point;
            lo = mid;
        } else {
            hi = mid;
        }
    }

    result.maxUtilization = best.utilization;
    result.maxRequestsPerSecond = best.requestsPerSecond;
    result.latencyAtMaxUs = best.latencyUs;
    return result;
}

} // namespace analysis
} // namespace treadmill
