#include "analysis/capacity.h"

#include "stats/summary.h"
#include "util/error.h"

namespace treadmill {
namespace analysis {

namespace {

/** Measure the mean tau-quantile at one utilization across seeds. */
CapacityProbe
probe(const CapacityParams &params, double utilization)
{
    // The runs at one probe point are seed-independent, so they fan
    // out across threads; metrics are reduced in run-index order.
    std::vector<core::ExperimentParams> runs;
    runs.reserve(params.runsPerPoint);
    for (unsigned run = 0; run < params.runsPerPoint; ++run) {
        core::ExperimentParams p = params.base;
        p.targetUtilization = utilization;
        p.requestsPerSecond = 0.0; // derive from utilization
        p.seed = params.seed * 6151 + run * 131 + 7;
        runs.push_back(std::move(p));
    }
    const auto results = core::runExperiments(runs, params.parallelism);

    std::vector<double> perRun;
    perRun.reserve(results.size());
    double rps = 0.0;
    for (const core::ExperimentResult &result : results) {
        perRun.push_back(result.aggregatedQuantile(
            params.tau, core::AggregationKind::PerInstance));
        rps = result.targetRps;
    }
    CapacityProbe point;
    point.utilization = utilization;
    point.requestsPerSecond = rps;
    point.latencyUs = stats::mean(perRun);
    point.meetsSlo = point.latencyUs <= params.sloUs;
    return point;
}

} // namespace

CapacityResult
planCapacity(const CapacityParams &params)
{
    if (!(params.sloUs > 0.0))
        throw ConfigError("SLO bound must be positive");
    if (!(params.utilizationLow > 0.0) ||
        !(params.utilizationHigh > params.utilizationLow) ||
        !(params.utilizationHigh < 1.0))
        throw ConfigError("capacity search needs 0 < lo < hi < 1");
    if (params.runsPerPoint == 0 || params.maxIterations == 0)
        throw ConfigError("capacity search needs runs and iterations");

    CapacityResult result;

    // Establish the bracket.
    CapacityProbe low = probe(params, params.utilizationLow);
    result.probes.push_back(low);
    if (!low.meetsSlo) {
        result.infeasible = true;
        return result;
    }
    CapacityProbe high = probe(params, params.utilizationHigh);
    result.probes.push_back(high);
    if (high.meetsSlo) {
        result.maxUtilization = high.utilization;
        result.maxRequestsPerSecond = high.requestsPerSecond;
        result.latencyAtMaxUs = high.latencyUs;
        return result;
    }

    // Bisect: invariant low meets the SLO, high does not.
    CapacityProbe best = low;
    double lo = params.utilizationLow;
    double hi = params.utilizationHigh;
    for (unsigned it = 0; it < params.maxIterations; ++it) {
        const double mid = 0.5 * (lo + hi);
        const CapacityProbe point = probe(params, mid);
        result.probes.push_back(point);
        if (point.meetsSlo) {
            best = point;
            lo = mid;
        } else {
            hi = mid;
        }
    }

    result.maxUtilization = best.utilization;
    result.maxRequestsPerSecond = best.requestsPerSecond;
    result.latencyAtMaxUs = best.latencyUs;
    return result;
}

} // namespace analysis
} // namespace treadmill
