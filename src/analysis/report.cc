#include "analysis/report.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"
#include "util/logging.h"
#include "util/strings.h"

namespace treadmill {
namespace analysis {

TextTable::TextTable(std::vector<std::string> header_)
    : header(std::move(header_))
{
    if (header.empty())
        throw ConfigError("table needs at least one column");
}

void
TextTable::addRow(std::vector<std::string> row)
{
    if (row.size() != header.size())
        throw ConfigError("table row width mismatch");
    rows.push_back(std::move(row));
}

std::string
TextTable::render() const
{
    std::vector<std::size_t> widths(header.size());
    for (std::size_t c = 0; c < header.size(); ++c)
        widths[c] = header[c].size();
    for (const auto &row : rows)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    std::string out;
    const auto renderRow = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (c > 0)
                out += "  ";
            out += c == 0 ? padRight(row[c], widths[c])
                          : padLeft(row[c], widths[c]);
        }
        out += '\n';
    };
    renderRow(header);
    std::size_t total = header.size() - 1;
    for (std::size_t w : widths)
        total += w + 1;
    out += std::string(total, '-');
    out += '\n';
    for (const auto &row : rows)
        renderRow(row);
    return out;
}

std::string
formatMicros(double us)
{
    if (std::fabs(us) < 1.0)
        return us >= 0.0 ? "<1 us" : ">-1 us";
    return strprintf("%.0f us", us);
}

std::string
formatPValue(double p)
{
    if (p < 1e-6)
        return "<1e-06";
    return strprintf("%.2e", p);
}

std::string
renderCoefficientTable(const AttributionResult &attribution,
                       double significance)
{
    std::vector<std::string> header{"Factor"};
    for (const QuantileModel &m : attribution.models) {
        const std::string pct = strprintf(
            "%g th", m.tau * 100.0);
        header.push_back(strprintf("P%g Est.", m.tau * 100.0));
        header.push_back(strprintf("P%g Std.Err", m.tau * 100.0));
        header.push_back(strprintf("P%g p-value", m.tau * 100.0));
        (void)pct;
    }
    TextTable table(header);

    if (attribution.models.empty())
        throw NumericalError("no fitted models to render");
    const std::size_t terms = attribution.models[0].terms.size();
    for (std::size_t t = 0; t < terms; ++t) {
        std::vector<std::string> row;
        std::string name = attribution.models[0].terms[t].name;
        bool significant = false;
        for (const QuantileModel &m : attribution.models)
            significant |= m.terms[t].pValue < significance;
        if (significant)
            name += " *";
        row.push_back(name);
        for (const QuantileModel &m : attribution.models) {
            const TermEstimate &term = m.terms[t];
            row.push_back(formatMicros(term.estimate));
            row.push_back(formatMicros(term.standardError));
            row.push_back(formatPValue(term.pValue));
        }
        table.addRow(std::move(row));
    }

    std::string out = table.render();
    out += "\npseudo-R2:";
    for (const QuantileModel &m : attribution.models)
        out += strprintf("  P%g=%.3f", m.tau * 100.0, m.pseudoR2);
    out += "\n(* = p < ";
    out += strprintf("%g", significance);
    out += " at some quantile)\n";
    return out;
}

std::string
renderCdf(std::vector<double> samples, std::size_t points)
{
    if (samples.empty())
        throw NumericalError("cannot render an empty CDF");
    if (points < 2)
        throw ConfigError("CDF needs at least two points");
    std::sort(samples.begin(), samples.end());
    std::string out;
    for (std::size_t i = 0; i < points; ++i) {
        const double p =
            static_cast<double>(i) / static_cast<double>(points - 1);
        const auto idx = static_cast<std::size_t>(
            p * static_cast<double>(samples.size() - 1));
        out += strprintf("%12.2f  %.4f\n", samples[idx], p);
    }
    return out;
}

} // namespace analysis
} // namespace treadmill
