#include "analysis/report.h"

#include <algorithm>
#include <cmath>

#include "stats/summary.h"
#include "util/error.h"
#include "util/logging.h"
#include "util/strings.h"

namespace treadmill {
namespace analysis {

TextTable::TextTable(std::vector<std::string> header_)
    : header(std::move(header_))
{
    if (header.empty())
        throw ConfigError("table needs at least one column");
}

void
TextTable::addRow(std::vector<std::string> row)
{
    if (row.size() != header.size())
        throw ConfigError("table row width mismatch");
    rows.push_back(std::move(row));
}

std::string
TextTable::render() const
{
    std::vector<std::size_t> widths(header.size());
    for (std::size_t c = 0; c < header.size(); ++c)
        widths[c] = header[c].size();
    for (const auto &row : rows)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    std::string out;
    const auto renderRow = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (c > 0)
                out += "  ";
            out += c == 0 ? padRight(row[c], widths[c])
                          : padLeft(row[c], widths[c]);
        }
        out += '\n';
    };
    renderRow(header);
    std::size_t total = header.size() - 1;
    for (std::size_t w : widths)
        total += w + 1;
    out += std::string(total, '-');
    out += '\n';
    for (const auto &row : rows)
        renderRow(row);
    return out;
}

std::string
formatMicros(double us)
{
    if (std::fabs(us) < 1.0)
        return us >= 0.0 ? "<1 us" : ">-1 us";
    return strprintf("%.0f us", us);
}

std::string
formatPValue(double p)
{
    if (p < 1e-6)
        return "<1e-06";
    return strprintf("%.2e", p);
}

std::string
renderCoefficientTable(const std::vector<QuantileModel> &models,
                       double significance)
{
    if (models.empty())
        throw NumericalError("no fitted models to render");

    std::vector<std::string> header{"Factor"};
    for (const QuantileModel &m : models) {
        header.push_back(strprintf("P%g Est.", m.tau * 100.0));
        header.push_back(strprintf("P%g Std.Err", m.tau * 100.0));
        header.push_back(strprintf("P%g p-value", m.tau * 100.0));
    }
    TextTable table(header);

    const std::size_t terms = models[0].terms.size();
    for (std::size_t t = 0; t < terms; ++t) {
        std::vector<std::string> row;
        std::string name = models[0].terms[t].name;
        bool significant = false;
        for (const QuantileModel &m : models)
            significant |= m.terms[t].pValue < significance;
        if (significant)
            name += " *";
        row.push_back(name);
        for (const QuantileModel &m : models) {
            const TermEstimate &term = m.terms[t];
            row.push_back(formatMicros(term.estimate));
            row.push_back(formatMicros(term.standardError));
            row.push_back(formatPValue(term.pValue));
        }
        table.addRow(std::move(row));
    }

    std::string out = table.render();
    out += "\npseudo-R2:";
    for (const QuantileModel &m : models)
        out += strprintf("  P%g=%.3f", m.tau * 100.0, m.pseudoR2);
    out += "\n(* = p < ";
    out += strprintf("%g", significance);
    out += " at some quantile)\n";
    return out;
}

std::string
renderCoefficientTable(const AttributionResult &attribution,
                       double significance)
{
    return renderCoefficientTable(attribution.models, significance);
}

DecompositionReport
decomposeTraces(const std::vector<obs::RequestTrace> &traces,
                const std::vector<double> &quantiles)
{
    if (traces.empty())
        throw NumericalError("cannot decompose zero traces");
    if (quantiles.empty())
        throw ConfigError("decomposition needs at least one quantile");

    const auto &names = obs::decompositionComponentNames();
    std::vector<std::vector<double>> perComponent(names.size());
    for (auto &samples : perComponent)
        samples.reserve(traces.size());
    std::vector<double> endToEnd;
    endToEnd.reserve(traces.size());

    for (const obs::RequestTrace &t : traces) {
        const auto d = obs::Decomposition::of(t);
        const std::vector<double> parts =
            obs::decompositionComponents(d);
        for (std::size_t c = 0; c < parts.size(); ++c)
            perComponent[c].push_back(parts[c]);
        endToEnd.push_back(d.endToEndUs);
    }

    DecompositionReport report;
    report.quantiles = quantiles;
    report.requestCount = traces.size();
    report.endToEndMeanUs = stats::mean(endToEnd);
    for (double q : quantiles)
        report.endToEndQuantileUs.push_back(
            stats::quantile(endToEnd, q));

    for (std::size_t c = 0; c < names.size(); ++c) {
        DecompositionReport::Component component;
        component.name = names[c];
        component.meanUs = stats::mean(perComponent[c]);
        component.meanShare =
            report.endToEndMeanUs > 0.0
                ? component.meanUs / report.endToEndMeanUs
                : 0.0;
        for (double q : quantiles)
            component.quantileUs.push_back(
                stats::quantile(perComponent[c], q));
        report.components.push_back(std::move(component));
    }
    return report;
}

std::string
renderDecompositionTable(const DecompositionReport &report)
{
    std::vector<std::string> header{"Component", "Mean"};
    for (double q : report.quantiles)
        header.push_back(strprintf("P%g", q * 100.0));
    header.push_back("Share");
    TextTable table(header);

    const auto addRow = [&table](const std::string &name, double mean,
                                 const std::vector<double> &qs,
                                 double share, bool withShare) {
        std::vector<std::string> row{name, strprintf("%.1f", mean)};
        for (double v : qs)
            row.push_back(strprintf("%.1f", v));
        row.push_back(withShare ? strprintf("%.1f%%", share * 100.0)
                                : std::string("-"));
        table.addRow(std::move(row));
    };

    double meanSum = 0.0;
    std::vector<double> quantileSums(report.quantiles.size(), 0.0);
    for (const auto &component : report.components) {
        addRow(component.name, component.meanUs, component.quantileUs,
               component.meanShare, true);
        meanSum += component.meanUs;
        for (std::size_t i = 0; i < component.quantileUs.size(); ++i)
            quantileSums[i] += component.quantileUs[i];
    }
    addRow("sum of components", meanSum, quantileSums, 1.0, false);
    addRow("end-to-end", report.endToEndMeanUs,
           report.endToEndQuantileUs, 1.0, false);

    std::string out = strprintf(
        "Latency decomposition over %zu traced requests (us)\n",
        report.requestCount);
    out += table.render();
    out += "(per-request component sums equal end-to-end exactly;"
           " per-component\n quantiles need not sum to the end-to-end"
           " quantile)\n";
    return out;
}

std::string
renderCdf(std::vector<double> samples, std::size_t points)
{
    if (samples.empty())
        throw NumericalError("cannot render an empty CDF");
    if (points < 2)
        throw ConfigError("CDF needs at least two points");
    std::sort(samples.begin(), samples.end());
    std::string out;
    for (std::size_t i = 0; i < points; ++i) {
        const double p =
            static_cast<double>(i) / static_cast<double>(points - 1);
        const auto idx = static_cast<std::size_t>(
            p * static_cast<double>(samples.size() - 1));
        out += strprintf("%12.2f  %.4f\n", samples[idx], p);
    }
    return out;
}

} // namespace analysis
} // namespace treadmill
