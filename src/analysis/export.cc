#include "analysis/export.h"

#include "stats/summary.h"

namespace treadmill {
namespace analysis {

namespace {

const double kExportQuantiles[] = {0.5, 0.9, 0.95, 0.99, 0.999};

/** Quantile summary of a raw sample vector. */
json::Value
quantileSummary(const std::vector<double> &samples)
{
    json::Object obj;
    obj["count"] =
        json::Value(static_cast<std::int64_t>(samples.size()));
    if (!samples.empty()) {
        std::vector<double> sorted = samples;
        std::sort(sorted.begin(), sorted.end());
        json::Object qs;
        for (double q : kExportQuantiles) {
            qs["p" + std::to_string(
                         static_cast<int>(q * 1000.0))] =
                json::Value(stats::quantileSorted(sorted, q));
        }
        obj["quantiles_us"] = json::Value(std::move(qs));
        obj["mean_us"] = json::Value(stats::mean(samples));
    }
    return json::Value(std::move(obj));
}

} // namespace

json::Value
toJson(const core::ExperimentResult &result)
{
    json::Object doc;
    doc["target_rps"] = json::Value(result.targetRps);
    doc["achieved_rps"] = json::Value(result.achievedRps);
    doc["server_utilization"] = json::Value(result.serverUtilization);
    doc["simulated_seconds"] =
        json::Value(toSeconds(result.simulatedTime));
    doc["frequency_transitions"] = json::Value(
        static_cast<std::int64_t>(result.frequencyTransitions));

    json::Object aggregated;
    for (double q : kExportQuantiles) {
        aggregated["p" + std::to_string(static_cast<int>(q * 1000.0))] =
            json::Value(result.aggregatedQuantile(
                q, core::AggregationKind::PerInstance));
    }
    doc["aggregated_quantiles_us"] = json::Value(std::move(aggregated));

    doc["ground_truth"] = quantileSummary(result.groundTruthUs);

    // Capture health (the tcpdump analogue's own diagnostics).
    json::Object capture;
    capture["unmatched_responses"] = json::Value(
        static_cast<std::int64_t>(result.captureUnmatchedResponses));
    capture["outstanding_at_end"] = json::Value(
        static_cast<std::int64_t>(result.captureOutstanding));
    doc["capture"] = json::Value(std::move(capture));
    doc["deadline_hit"] = json::Value(result.deadlineHit);

    // Measured per-component decomposition samples (Fig 3).
    json::Object components;
    components["server"] = quantileSummary(result.serverComponentUs);
    components["network"] = quantileSummary(result.networkComponentUs);
    components["client"] = quantileSummary(result.clientComponentUs);
    doc["components"] = json::Value(std::move(components));

    // The run's full metrics-registry snapshot (counters, gauges,
    // histograms from every component).
    if (!result.metrics.isNull())
        doc["metrics"] = result.metrics;

    json::Array instances;
    for (const auto &inst : result.instances) {
        json::Object i;
        i["measured"] =
            json::Value(static_cast<std::int64_t>(inst.measured));
        i["reached_target"] = json::Value(inst.reachedTarget);
        i["client_cpu_utilization"] =
            json::Value(inst.cpuUtilization);
        i["remote_rack"] = json::Value(inst.remoteRack);
        json::Object qs;
        for (const auto &[q, v] : inst.quantiles)
            qs["p" + std::to_string(static_cast<int>(q * 1000.0))] =
                json::Value(v);
        i["quantiles_us"] = json::Value(std::move(qs));
        instances.push_back(json::Value(std::move(i)));
    }
    doc["instances"] = json::Value(std::move(instances));
    return json::Value(std::move(doc));
}

json::Value
toJson(const std::vector<QuantileModel> &models)
{
    json::Array out;
    for (const auto &model : models) {
        json::Object m;
        m["tau"] = json::Value(model.tau);
        m["pseudo_r2"] = json::Value(model.pseudoR2);
        json::Array terms;
        for (const auto &term : model.terms) {
            json::Object t;
            t["name"] = json::Value(term.name);
            t["estimate_us"] = json::Value(term.estimate);
            t["std_err_us"] = json::Value(term.standardError);
            t["p_value"] = json::Value(term.pValue);
            terms.push_back(json::Value(std::move(t)));
        }
        m["terms"] = json::Value(std::move(terms));
        out.push_back(json::Value(std::move(m)));
    }
    return json::Value(std::move(out));
}

json::Value
toJson(const AttributionResult &attribution)
{
    json::Object doc;
    doc["observations"] = json::Value(
        static_cast<std::int64_t>(attribution.observations.size()));
    doc["models"] = toJson(attribution.models);
    return json::Value(std::move(doc));
}

json::Value
toJson(const DecompositionReport &report)
{
    json::Object doc;
    doc["requests"] = json::Value(
        static_cast<std::int64_t>(report.requestCount));

    json::Array quantiles;
    for (double q : report.quantiles)
        quantiles.push_back(json::Value(q));
    doc["quantiles"] = json::Value(std::move(quantiles));

    json::Array components;
    for (const auto &component : report.components) {
        json::Object c;
        c["name"] = json::Value(component.name);
        c["mean_us"] = json::Value(component.meanUs);
        c["mean_share"] = json::Value(component.meanShare);
        json::Array qs;
        for (double v : component.quantileUs)
            qs.push_back(json::Value(v));
        c["quantiles_us"] = json::Value(std::move(qs));
        components.push_back(json::Value(std::move(c)));
    }
    doc["components"] = json::Value(std::move(components));

    json::Object endToEnd;
    endToEnd["mean_us"] = json::Value(report.endToEndMeanUs);
    json::Array qs;
    for (double v : report.endToEndQuantileUs)
        qs.push_back(json::Value(v));
    endToEnd["quantiles_us"] = json::Value(std::move(qs));
    doc["end_to_end"] = json::Value(std::move(endToEnd));
    return json::Value(std::move(doc));
}

json::Value
toJson(const ImprovementResult &result)
{
    json::Object doc;
    doc["tau"] = json::Value(result.tau);
    doc["recommended_config"] =
        json::Value(result.recommended.label());
    json::Object before;
    before["mean_us"] = json::Value(result.before.mean);
    before["stddev_us"] = json::Value(result.before.stddev);
    before["runs"] = json::Value(static_cast<std::int64_t>(
        result.before.perRunQuantileUs.size()));
    json::Object after;
    after["mean_us"] = json::Value(result.after.mean);
    after["stddev_us"] = json::Value(result.after.stddev);
    after["runs"] = json::Value(static_cast<std::int64_t>(
        result.after.perRunQuantileUs.size()));
    doc["before"] = json::Value(std::move(before));
    doc["after"] = json::Value(std::move(after));
    doc["latency_reduction"] = json::Value(result.latencyReduction());
    doc["variability_reduction"] =
        json::Value(result.variabilityReduction());
    return json::Value(std::move(doc));
}

} // namespace analysis
} // namespace treadmill
