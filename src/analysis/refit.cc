#include "analysis/refit.h"

#include <algorithm>
#include <cmath>

#include "obs/span.h"
#include "stats/summary.h"
#include "util/error.h"
#include "util/strings.h"

namespace treadmill {
namespace analysis {

StoredObservations
loadObservations(const store::StudyReader &study,
                 const std::vector<double> &quantiles)
{
    const store::StudyMeta &meta = study.meta();
    StoredObservations out{
        regress::FactorialDesign(meta.factors), {}, {}, {}};
    out.levels.reserve(
        static_cast<std::size_t>(study.runCount()));

    for (std::uint64_t seq = 0; seq < study.runCount(); ++seq) {
        const store::RunReader run = study.openRun(seq);
        out.levels.push_back(
            run.doubles(store::ColumnId::FactorLevels).toVector());
        out.seeds.push_back(
            run.u64s(store::ColumnId::Seed)[0]);

        const auto taus = run.doubles(store::ColumnId::QuantileTaus);
        const auto values =
            run.doubles(store::ColumnId::QuantileValues);
        std::vector<double> sortedReservoir;
        for (double tau : quantiles) {
            // Prefer the snapshotted value: it is the exact double the
            // live pipeline fitted, so refits reproduce coefficients
            // bit-identically.
            bool snapshotted = false;
            for (std::size_t i = 0; i < taus.size(); ++i) {
                if (taus[i] == tau) {
                    out.responses[tau].push_back(values[i]);
                    snapshotted = true;
                    break;
                }
            }
            if (snapshotted)
                continue;
            if (sortedReservoir.empty()) {
                sortedReservoir =
                    run.doubles(store::ColumnId::Reservoir)
                        .toVector();
                if (sortedReservoir.empty())
                    throw ConfigError(strprintf(
                        "run %llu snapshots no tau %g and has an "
                        "empty reservoir",
                        static_cast<unsigned long long>(seq), tau));
                std::sort(sortedReservoir.begin(),
                          sortedReservoir.end());
            }
            out.responses[tau].push_back(
                stats::quantileSorted(sortedReservoir, tau));
        }
    }
    return out;
}

std::vector<QuantileModel>
refitFromStore(const store::StudyReader &study,
               const FactorialFitParams &params)
{
    const StoredObservations data =
        loadObservations(study, params.quantiles);
    return fitFactorialModels(data.design, data.levels, data.responses,
                              params);
}

std::map<double, std::vector<StoredProvenanceRank>>
provenanceRankFromStore(const store::StudyReader &study)
{
    // (tau, kind) -> accumulated mean/share and contributing runs.
    std::map<double, std::map<std::uint64_t, StoredProvenanceRank>>
        acc;
    for (std::uint64_t seq = 0; seq < study.runCount(); ++seq) {
        const store::RunReader run = study.openRun(seq);
        if (!run.has(store::ColumnId::ProvenanceTaus))
            continue;
        const store::RunRecord rec = run.record();
        for (const store::ProvenanceRow &row : rec.provenance) {
            StoredProvenanceRank &rank = acc[row.tau][row.kind];
            rank.kind = row.kind;
            rank.meanUs += row.meanUs;
            rank.share += row.share;
            ++rank.runs;
        }
    }

    const std::vector<std::string> &names = obs::segmentKindNames();
    std::map<double, std::vector<StoredProvenanceRank>> out;
    for (auto &[tau, kinds] : acc) {
        std::vector<StoredProvenanceRank> ranked;
        ranked.reserve(kinds.size());
        for (auto &[kind, rank] : kinds) {
            rank.meanUs /= static_cast<double>(rank.runs);
            rank.share /= static_cast<double>(rank.runs);
            rank.name = kind < names.size()
                            ? names[static_cast<std::size_t>(kind)]
                            : strprintf("segment-%llu",
                                        static_cast<unsigned long long>(
                                            kind));
            ranked.push_back(rank);
        }
        std::stable_sort(ranked.begin(), ranked.end(),
                         [](const StoredProvenanceRank &a,
                            const StoredProvenanceRank &b) {
                             return a.share > b.share;
                         });
        out[tau] = std::move(ranked);
    }
    return out;
}

} // namespace analysis
} // namespace treadmill
