/**
 * @file
 * Tail provenance: which critical-path segment owns each latency
 * quantile.
 *
 * decomposeTraces() answers "where does the time go on average and at
 * the quantiles, component by component" for the flat eight-component
 * path. This module asks the sharper question the span model makes
 * answerable: for the requests that *are* the P99, which segment of
 * their critical path -- balancer queueing, a backend's worker queue,
 * a retry backoff -- put them there, and which backend is it
 * attributable to?
 *
 * Method: every span's critical path is extracted
 * (obs::extractCriticalPath) and aggregated per obs::SegmentKind
 * (integer nanoseconds, telescoping exactly to end-to-end). Spans are
 * ranked by end-to-end latency, and each requested quantile tau gets a
 * rank window [tau - h, tau + h] with h = min(0.05, (1 - tau) / 2) --
 * wide enough to average noise away at the median, narrow enough that
 * the P99 band does not leak into the body. Within the band, segment
 * means and shares are ranked; per-backend attribution sums every
 * segment whose time is attributable to a backend (waits on an
 * unanswered attempt count against the backend being waited on).
 */

#ifndef TREADMILL_ANALYSIS_PROVENANCE_H_
#define TREADMILL_ANALYSIS_PROVENANCE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/report.h"
#include "obs/span.h"
#include "util/json.h"

namespace treadmill {
namespace analysis {

/** One segment kind's contribution within a quantile band. */
struct SegmentContribution {
    obs::SegmentKind kind = obs::SegmentKind::ClientQueue;
    double meanUs = 0.0; ///< Mean over the band's spans.
    double share = 0.0;  ///< Fraction of the band's end-to-end mean.
};

/** One backend's attributable share within a quantile band. Id -1
 *  collects client/network/router time no backend owns. */
struct BackendContribution {
    std::int32_t backendId = -1;
    double meanUs = 0.0;
    double share = 0.0;
};

/** Provenance of one quantile. */
struct QuantileProvenance {
    double tau = 0.5;
    /** End-to-end latency range of the band's spans, microseconds. */
    double bandLowUs = 0.0;
    double bandHighUs = 0.0;
    std::size_t spanCount = 0; ///< Spans inside the rank window.
    double meanEndToEndUs = 0.0;
    /** Segment contributions, largest mean first. */
    std::vector<SegmentContribution> segments;
    /** Backend attribution, largest mean first. */
    std::vector<BackendContribution> backends;

    /** The ranked-first segment (throws if the band was empty). */
    const SegmentContribution &dominant() const;
};

/** Full tail-provenance report. */
struct ProvenanceReport {
    std::vector<QuantileProvenance> quantiles;
    std::size_t totalSpans = 0; ///< Spans offered.
    std::size_t decomposed = 0; ///< Spans with a valid critical path.

    /** The report for quantile @p tau; throws if absent. */
    const QuantileProvenance &at(double tau) const;
};

/**
 * Compute the tail-provenance report of @p spans at @p quantiles.
 * Spans whose critical path cannot be extracted (incomplete winner
 * timeline) are skipped and counted in totalSpans - decomposed.
 * Throws NumericalError when no span decomposes.
 */
ProvenanceReport
tailProvenance(const std::vector<obs::SpanTrace> &spans,
               const std::vector<double> &quantiles = {0.5, 0.99});

/**
 * The span-based, cluster-aware analogue of decomposeTraces(): one
 * component per obs::SegmentKind over *all* decomposable spans, with
 * per-quantile component values. Because each span's segments
 * telescope exactly, the component means sum to the end-to-end mean.
 */
DecompositionReport
decomposeSpans(const std::vector<obs::SpanTrace> &spans,
               const std::vector<double> &quantiles = {0.5, 0.99,
                                                       0.999});

/** Render a ProvenanceReport as aligned text tables (one block per
 *  quantile: ranked segments, then backend attribution). */
std::string renderProvenanceTable(const ProvenanceReport &report);

/** Serialize a ProvenanceReport (schema "provenance/1"). */
json::Value provenanceToJson(const ProvenanceReport &report);

} // namespace analysis
} // namespace treadmill

#endif // TREADMILL_ANALYSIS_PROVENANCE_H_
