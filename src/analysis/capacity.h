/**
 * @file
 * Capacity planning against a tail-latency SLO.
 *
 * The paper motivates precise tail measurement with provisioning:
 * "servers are typically acquired in large quantities ... so it is
 * important to choose the best design possible and carefully
 * provision resources" (S I). CapacityPlanner answers the operator's
 * question directly: given a configuration and a P-quantile SLO, what
 * is the highest utilization (and request rate) the machine sustains?
 *
 * The search is a bisection on utilization; each probe runs the full
 * Treadmill procedure over several seeds (hysteresis-aware) and uses
 * the mean of the per-run quantiles.
 */

#ifndef TREADMILL_ANALYSIS_CAPACITY_H_
#define TREADMILL_ANALYSIS_CAPACITY_H_

#include <cstdint>
#include <vector>

#include "core/experiment.h"

namespace treadmill {
namespace analysis {

/** Controls for an SLO capacity search. */
struct CapacityParams {
    core::ExperimentParams base;
    /** SLO quantile and bound (e.g., P99 <= 300 us). */
    double tau = 0.99;
    double sloUs = 300.0;
    /** Utilization bracket searched. */
    double utilizationLow = 0.05;
    double utilizationHigh = 0.90;
    /** Bisection iterations (each costs runsPerPoint experiments). */
    unsigned maxIterations = 8;
    /** Runs averaged per probe point (hysteresis). */
    unsigned runsPerPoint = 3;
    std::uint64_t seed = 1;
    /** Fan each probe point's independent runs across threads (the
     *  bisection itself is inherently sequential). */
    exec::Parallelism parallelism{};
};

/** One probed operating point. */
struct CapacityProbe {
    double utilization = 0.0;
    double requestsPerSecond = 0.0;
    double latencyUs = 0.0; ///< Mean of per-run tau-quantiles.
    bool meetsSlo = false;
};

/** Outcome of the capacity search. */
struct CapacityResult {
    /** Highest utilization meeting the SLO (0 if none does). */
    double maxUtilization = 0.0;
    /** Request rate at that utilization. */
    double maxRequestsPerSecond = 0.0;
    /** Measured tau-quantile latency at the operating point. */
    double latencyAtMaxUs = 0.0;
    /** True when even the low end of the bracket violates the SLO. */
    bool infeasible = false;
    /** Every probed point, in probe order. */
    std::vector<CapacityProbe> probes;
};

/**
 * Validate a capacity search configuration up front, naming the
 * offending field: tau must lie in (0, 1), sloUs must be positive,
 * 0 < utilizationLow < utilizationHigh < 1, and runsPerPoint /
 * maxIterations must be nonzero. Shared by planCapacity() and the
 * drive layer's closed-loop controller so both reject degenerate
 * searches identically.
 *
 * @throws ConfigError naming the invalid field.
 */
void validateCapacityParams(const CapacityParams &params);

/**
 * Bisect for the highest utilization whose tau-quantile latency meets
 * the SLO under the given configuration.
 */
CapacityResult planCapacity(const CapacityParams &params);

/** How a probe point's confidence interval relates to an SLO bound. */
enum class SloVerdict {
    Clears,    ///< CI entirely at or below the bound.
    Violates,  ///< CI entirely above the bound.
    Uncertain, ///< CI straddles the bound (or too few runs).
};

/** CI-aware comparison of one probe point against an SLO. */
struct SloComparison {
    double mean = 0.0;
    double ciLowUs = 0.0;  ///< Lower confidence bound on the mean.
    double ciHighUs = 0.0; ///< Upper confidence bound on the mean.
    std::size_t runs = 0;
    SloVerdict verdict = SloVerdict::Uncertain;
};

/**
 * Compare per-run tau-quantile measurements against an SLO bound with
 * a two-sided Student-t confidence interval on their mean. With fewer
 * than two runs the verdict is always Uncertain (no spread estimate).
 * This is the probe-narrowing criterion of the closed-loop capacity
 * controller: only a clean Clears/Violates lets the search move its
 * bracket without re-probing.
 */
SloComparison compareToSlo(const std::vector<double> &perRunQuantileUs,
                           double sloUs, double confidence = 0.95);

} // namespace analysis
} // namespace treadmill

#endif // TREADMILL_ANALYSIS_CAPACITY_H_
