/**
 * @file
 * End-to-end tail-latency attribution (paper S IV and S V).
 *
 * The pipeline: run repeated experiments over random permutations of
 * the 2^4 factorial configurations (at least `repsPerConfig` per
 * cell), take each experiment's aggregated quantile as the response
 * variable, perturb the dummy variables by 0.01 sd, fit quantile
 * regression with all interaction terms at each requested tau, and
 * report Table IV-style estimates with bootstrap standard errors,
 * p-values, and the pseudo-R^2 goodness-of-fit.
 */

#ifndef TREADMILL_ANALYSIS_ATTRIBUTION_H_
#define TREADMILL_ANALYSIS_ATTRIBUTION_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "hw/hardware_config.h"
#include "regress/design.h"
#include "regress/inference.h"

namespace treadmill {
namespace analysis {

/** Controls for one attribution study. */
struct AttributionParams {
    /** Template experiment; its `config` and `seed` are overridden
     *  per run. */
    core::ExperimentParams base;
    /** Quantiles to model (the paper reports P50/P95/P99 in Table IV
     *  and adds P90 in Figs 7-10). */
    std::vector<double> quantiles{0.5, 0.95, 0.99};
    /** Experiments per factorial cell (paper: >= 30). */
    unsigned repsPerConfig = 30;
    /** Bootstrap replicates for standard errors. */
    std::size_t bootstrapReplicates = 200;
    /** The paper's symmetric dummy-variable perturbation. */
    double perturbSd = 0.01;
    core::AggregationKind aggregation =
        core::AggregationKind::PerInstance;
    std::uint64_t seed = 1;
    /** Fan the independent experiments across threads; the collected
     *  Observation set is bit-exact for every setting (each run's
     *  seed depends only on its index; see core::runExperiments). */
    exec::Parallelism parallelism{};
    /** Optional sweep observer (runs done / total, wall-clock,
     *  achieved sim-time throughput). */
    exec::ProgressFn progress{};
};

/** One measured experiment in the attribution data set. */
struct Observation {
    hw::HardwareConfig config;
    std::uint64_t runSeed = 0;
    /** Aggregated quantile latency per requested tau, microseconds. */
    std::map<double, double> quantileUs;
    double serverUtilization = 0.0;
};

/** Table IV row: one term of one quantile model. */
struct TermEstimate {
    std::string name;
    double estimate = 0.0;
    double standardError = 0.0;
    double pValue = 1.0;
};

/** The fitted model for one quantile. */
struct QuantileModel {
    double tau = 0.5;
    std::vector<TermEstimate> terms;
    double pseudoR2 = 0.0;
    regress::QuantRegResult fit;
};

/** Complete outcome of an attribution study. */
struct AttributionResult {
    std::vector<Observation> observations;
    std::vector<QuantileModel> models;
    regress::FactorialDesign design{
        std::vector<std::string>{"numa", "turbo", "dvfs", "nic"}};

    /** Model for quantile @p tau; throws if not fitted. */
    const QuantileModel &model(double tau) const;

    /**
     * Predicted tau-quantile latency for @p config (sum of active
     * coefficients, Table IV usage example).
     */
    double predict(double tau, const hw::HardwareConfig &config) const;

    /**
     * Average impact of switching factor @p factorIdx to high level,
     * assuming all other factors are equally likely low or high
     * (Figs 8 and 10).
     */
    double averageFactorImpact(double tau, std::size_t factorIdx) const;

    /**
     * Average impact of switching factor @p factorIdx to high level
     * with factor @p givenIdx pinned at @p givenHigh, averaging over
     * the remaining factors. Exposes conditional effects such as
     * "turbo given the performance governor" (Finding 8's thermal
     * interaction).
     */
    double averageFactorImpactGiven(double tau, std::size_t factorIdx,
                                    std::size_t givenIdx,
                                    bool givenHigh) const;
};

/** Controls for fitting factorial quantile-regression models to an
 *  arbitrary (design, levels, responses) data set. */
struct FactorialFitParams {
    std::vector<double> quantiles{0.5, 0.95, 0.99};
    std::size_t bootstrapReplicates = 200;
    double perturbSd = 0.01;
    std::uint64_t seed = 1;
};

/**
 * Fit one QuantileModel per requested tau to a generic 2-level
 * factorial data set. This is the engine behind fitAttribution(),
 * exposed so studies with factor sets other than the hardware one --
 * e.g. injected-fault toggles -- reuse the identical treatment:
 * 0.01-sd dummy perturbation, quantile regression with all
 * interactions, bootstrap standard errors, pseudo-R^2.
 *
 * @param design The factor structure (any names/count).
 * @param levels One level vector (0/1 per factor) per observation.
 * @param responses tau -> one response per observation (microseconds);
 *        must contain every tau in params.quantiles.
 */
std::vector<QuantileModel> fitFactorialModels(
    const regress::FactorialDesign &design,
    const std::vector<std::vector<double>> &levels,
    const std::map<double, std::vector<double>> &responses,
    const FactorialFitParams &params);

/**
 * Collect the experiment data set for an attribution study: runs
 * repsPerConfig experiments for each of the 16 configurations in a
 * randomized order with fresh run seeds.
 */
std::vector<Observation> collectObservations(
    const AttributionParams &params);

/**
 * Fit the quantile-regression models to an observation set.
 */
AttributionResult fitAttribution(const AttributionParams &params,
                                 std::vector<Observation> observations);

/** collectObservations + fitAttribution. */
AttributionResult runAttribution(const AttributionParams &params);

} // namespace analysis
} // namespace treadmill

#endif // TREADMILL_ANALYSIS_ATTRIBUTION_H_
