#include "analysis/provenance.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>

#include "stats/summary.h"
#include "util/error.h"
#include "util/strings.h"

namespace treadmill {
namespace analysis {

const SegmentContribution &
QuantileProvenance::dominant() const
{
    if (segments.empty())
        throw NumericalError("provenance band holds no segments");
    return segments.front();
}

const QuantileProvenance &
ProvenanceReport::at(double tau) const
{
    for (const QuantileProvenance &q : quantiles) {
        if (std::fabs(q.tau - tau) < 1e-12)
            return q;
    }
    throw NumericalError(
        strprintf("no provenance computed for tau=%g", tau));
}

namespace {

/** One decomposable span: its critical path, per-kind sums, and rank
 *  key. */
struct DecomposedSpan {
    obs::CriticalPath path;
    obs::ClusterDecomposition decomp;
    double endToEndUs = 0.0;
};

std::vector<DecomposedSpan>
decomposeAll(const std::vector<obs::SpanTrace> &spans)
{
    std::vector<DecomposedSpan> out;
    out.reserve(spans.size());
    for (const obs::SpanTrace &span : spans) {
        DecomposedSpan d;
        if (!obs::extractCriticalPath(span, d.path))
            continue;
        d.decomp = obs::ClusterDecomposition::of(span);
        d.endToEndUs = d.decomp.endToEndUs();
        out.push_back(std::move(d));
    }
    // Rank by end-to-end latency; stable so equal latencies keep
    // completion order and the report is deterministic.
    std::stable_sort(out.begin(), out.end(),
                     [](const DecomposedSpan &a, const DecomposedSpan &b) {
                         return a.endToEndUs < b.endToEndUs;
                     });
    return out;
}

QuantileProvenance
bandProvenance(const std::vector<DecomposedSpan> &ranked, double tau)
{
    if (tau <= 0.0 || tau >= 1.0)
        throw ConfigError("provenance quantiles must lie in (0, 1)");
    QuantileProvenance q;
    q.tau = tau;

    const std::size_t n = ranked.size();
    // Rank window [tau - h, tau + h]: wide at the median, but capped
    // so the tail band cannot leak into the body of the distribution.
    const double h = std::min(0.05, (1.0 - tau) / 2.0);
    const double lo = std::max(0.0, tau - h);
    const double hi = std::min(1.0, tau + h);
    const auto last = static_cast<double>(n - 1);
    std::size_t iLo =
        static_cast<std::size_t>(std::floor(lo * last));
    std::size_t iHi =
        static_cast<std::size_t>(std::ceil(hi * last));
    iHi = std::min(iHi, n - 1);
    if (iLo > iHi)
        iLo = iHi;

    q.spanCount = iHi - iLo + 1;
    q.bandLowUs = ranked[iLo].endToEndUs;
    q.bandHighUs = ranked[iHi].endToEndUs;

    // Integer-nanosecond sums, so shares inherit the telescoping
    // exactness of the per-span decomposition.
    std::uint64_t kindNs[obs::kSegmentKindCount] = {};
    std::uint64_t totalNs = 0;
    std::map<std::int32_t, std::uint64_t> backendNs;
    for (std::size_t i = iLo; i <= iHi; ++i) {
        const DecomposedSpan &d = ranked[i];
        for (std::size_t k = 0; k < obs::kSegmentKindCount; ++k)
            kindNs[k] += d.decomp.ns[k];
        totalNs += d.decomp.endToEndNs;
        for (std::size_t s = 0; s < d.path.count; ++s) {
            const obs::PathSegment &seg = d.path.segments[s];
            backendNs[seg.backendId] += seg.ns();
        }
    }
    const auto count = static_cast<double>(q.spanCount);
    const double totalUs = static_cast<double>(totalNs) / 1000.0;
    q.meanEndToEndUs = totalUs / count;

    for (std::size_t k = 0; k < obs::kSegmentKindCount; ++k) {
        if (kindNs[k] == 0)
            continue;
        SegmentContribution c;
        c.kind = static_cast<obs::SegmentKind>(k);
        c.meanUs = static_cast<double>(kindNs[k]) / 1000.0 / count;
        c.share = totalNs > 0 ? static_cast<double>(kindNs[k]) /
                                    static_cast<double>(totalNs)
                              : 0.0;
        q.segments.push_back(c);
    }
    std::stable_sort(q.segments.begin(), q.segments.end(),
                     [](const SegmentContribution &a,
                        const SegmentContribution &b) {
                         return a.meanUs > b.meanUs;
                     });

    for (const auto &[backend, ns] : backendNs) {
        BackendContribution c;
        c.backendId = backend;
        c.meanUs = static_cast<double>(ns) / 1000.0 / count;
        c.share = totalNs > 0 ? static_cast<double>(ns) /
                                    static_cast<double>(totalNs)
                              : 0.0;
        q.backends.push_back(c);
    }
    std::stable_sort(q.backends.begin(), q.backends.end(),
                     [](const BackendContribution &a,
                        const BackendContribution &b) {
                         return a.meanUs > b.meanUs;
                     });
    return q;
}

} // namespace

ProvenanceReport
tailProvenance(const std::vector<obs::SpanTrace> &spans,
               const std::vector<double> &quantiles)
{
    if (quantiles.empty())
        throw ConfigError("provenance needs at least one quantile");
    ProvenanceReport report;
    report.totalSpans = spans.size();
    const std::vector<DecomposedSpan> ranked = decomposeAll(spans);
    report.decomposed = ranked.size();
    if (ranked.empty())
        throw NumericalError(
            "no span yielded a complete critical path");
    for (double tau : quantiles)
        report.quantiles.push_back(bandProvenance(ranked, tau));
    return report;
}

DecompositionReport
decomposeSpans(const std::vector<obs::SpanTrace> &spans,
               const std::vector<double> &quantiles)
{
    if (quantiles.empty())
        throw ConfigError("decomposition needs at least one quantile");
    const std::vector<DecomposedSpan> ranked = decomposeAll(spans);
    if (ranked.empty())
        throw NumericalError(
            "no span yielded a complete critical path");

    const auto &names = obs::segmentKindNames();
    std::vector<std::vector<double>> perKind(obs::kSegmentKindCount);
    std::vector<double> endToEnd;
    endToEnd.reserve(ranked.size());
    for (auto &samples : perKind)
        samples.reserve(ranked.size());
    for (const DecomposedSpan &d : ranked) {
        for (std::size_t k = 0; k < obs::kSegmentKindCount; ++k)
            perKind[k].push_back(
                d.decomp.us(static_cast<obs::SegmentKind>(k)));
        endToEnd.push_back(d.endToEndUs);
    }

    DecompositionReport report;
    report.quantiles = quantiles;
    report.requestCount = ranked.size();
    report.endToEndMeanUs = stats::mean(endToEnd);
    for (double tau : quantiles)
        report.endToEndQuantileUs.push_back(
            stats::quantile(endToEnd, tau));
    for (std::size_t k = 0; k < obs::kSegmentKindCount; ++k) {
        DecompositionReport::Component component;
        component.name = names[k];
        component.meanUs = stats::mean(perKind[k]);
        component.meanShare =
            report.endToEndMeanUs > 0.0
                ? component.meanUs / report.endToEndMeanUs
                : 0.0;
        for (double tau : quantiles)
            component.quantileUs.push_back(
                stats::quantile(perKind[k], tau));
        report.components.push_back(std::move(component));
    }
    return report;
}

std::string
renderProvenanceTable(const ProvenanceReport &report)
{
    const auto &names = obs::segmentKindNames();
    std::string out = strprintf(
        "tail provenance: %zu spans, %zu decomposed\n",
        report.totalSpans, report.decomposed);
    for (const QuantileProvenance &q : report.quantiles) {
        out += strprintf(
            "\nP%g band: %zu spans, [%.1f, %.1f] us, mean %.1f us\n",
            q.tau * 100.0, q.spanCount, q.bandLowUs, q.bandHighUs,
            q.meanEndToEndUs);
        TextTable segments({"segment", "mean", "share"});
        for (const SegmentContribution &c : q.segments) {
            segments.addRow(
                {names[static_cast<std::size_t>(c.kind)],
                 formatMicros(c.meanUs),
                 strprintf("%.1f%%", c.share * 100.0)});
        }
        out += segments.render();
        TextTable backends({"attributed to", "mean", "share"});
        for (const BackendContribution &c : q.backends) {
            backends.addRow(
                {c.backendId < 0
                     ? std::string("client/net/router")
                     : strprintf("backend %d", c.backendId),
                 formatMicros(c.meanUs),
                 strprintf("%.1f%%", c.share * 100.0)});
        }
        out += backends.render();
    }
    return out;
}

json::Value
provenanceToJson(const ProvenanceReport &report)
{
    const auto &names = obs::segmentKindNames();
    json::Object doc;
    doc["schema"] = json::Value("provenance/1");
    doc["total_spans"] =
        json::Value(static_cast<std::int64_t>(report.totalSpans));
    doc["decomposed"] =
        json::Value(static_cast<std::int64_t>(report.decomposed));
    json::Array rows;
    for (const QuantileProvenance &q : report.quantiles) {
        json::Object row;
        row["tau"] = json::Value(q.tau);
        row["band_low_us"] = json::Value(q.bandLowUs);
        row["band_high_us"] = json::Value(q.bandHighUs);
        row["span_count"] =
            json::Value(static_cast<std::int64_t>(q.spanCount));
        row["mean_end_to_end_us"] = json::Value(q.meanEndToEndUs);
        json::Array segments;
        for (const SegmentContribution &c : q.segments) {
            json::Object seg;
            seg["segment"] =
                json::Value(names[static_cast<std::size_t>(c.kind)]);
            seg["mean_us"] = json::Value(c.meanUs);
            seg["share"] = json::Value(c.share);
            segments.push_back(json::Value(std::move(seg)));
        }
        row["segments"] = json::Value(std::move(segments));
        json::Array backends;
        for (const BackendContribution &c : q.backends) {
            json::Object be;
            be["backend"] =
                json::Value(static_cast<std::int64_t>(c.backendId));
            be["mean_us"] = json::Value(c.meanUs);
            be["share"] = json::Value(c.share);
            backends.push_back(json::Value(std::move(be)));
        }
        row["backends"] = json::Value(std::move(backends));
        rows.push_back(json::Value(std::move(row)));
    }
    doc["quantiles"] = json::Value(std::move(rows));
    return json::Value(std::move(doc));
}

} // namespace analysis
} // namespace treadmill
