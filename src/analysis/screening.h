/**
 * @file
 * Factor screening by null-hypothesis testing (paper S IV-B).
 *
 * Before fitting the full factorial model, the paper identifies which
 * candidate factors "actually have an impact on the tail latency"
 * using null-hypothesis tests over experiments run under random
 * permutations of all factors. screenFactors() implements that step:
 * for each factor it splits the observations into low/high groups and
 * permutation-tests the difference of the group tau-quantile means.
 */

#ifndef TREADMILL_ANALYSIS_SCREENING_H_
#define TREADMILL_ANALYSIS_SCREENING_H_

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/attribution.h"

namespace treadmill {
namespace analysis {

/** Screening verdict for one candidate factor. */
struct FactorScreen {
    std::string name;
    double effectUs = 0.0; ///< mean(high group) - mean(low group).
    double pValue = 1.0;
    bool significant = false;
};

/** Controls for the screening pass. */
struct ScreeningParams {
    double tau = 0.99;
    double significance = 0.05;
    std::size_t permutations = 2000;
    std::uint64_t seed = 1;
    /** Fan the per-factor permutation tests across threads; each
     *  factor's Rng is an index-derived substream, so the screens are
     *  bit-exact for every setting. */
    exec::Parallelism parallelism{};
};

/**
 * Screen all four factors against a set of observations collected
 * under random factor permutations (collectObservations() output).
 *
 * @throws NumericalError when a factor never varies in the data.
 */
std::vector<FactorScreen>
screenFactors(const std::vector<Observation> &observations,
              const ScreeningParams &params);

} // namespace analysis
} // namespace treadmill

#endif // TREADMILL_ANALYSIS_SCREENING_H_
