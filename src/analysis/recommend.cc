#include "analysis/recommend.h"

#include <algorithm>
#include <functional>

#include "stats/summary.h"
#include "util/error.h"
#include "util/rng.h"

namespace treadmill {
namespace analysis {

std::vector<ConfigPrediction>
rankConfigurations(const AttributionResult &attribution, double tau)
{
    std::vector<ConfigPrediction> ranked;
    ranked.reserve(16);
    for (const hw::HardwareConfig &config : hw::allConfigs()) {
        ConfigPrediction p;
        p.config = config;
        p.predictedUs = attribution.predict(tau, config);
        ranked.push_back(p);
    }
    std::stable_sort(ranked.begin(), ranked.end(),
                     [](const ConfigPrediction &a,
                        const ConfigPrediction &b) {
                         return a.predictedUs < b.predictedUs;
                     });
    return ranked;
}

hw::HardwareConfig
bestConfiguration(const AttributionResult &attribution, double tau)
{
    return rankConfigurations(attribution, tau).front().config;
}

double
ImprovementResult::latencyReduction() const
{
    if (before.mean == 0.0)
        return 0.0;
    return (before.mean - after.mean) / before.mean;
}

double
ImprovementResult::variabilityReduction() const
{
    if (before.stddev == 0.0)
        return 0.0;
    return (before.stddev - after.stddev) / before.stddev;
}

namespace {

ImprovementArm
runArm(const core::ExperimentParams &base, double tau,
       core::AggregationKind aggregation, unsigned runs,
       std::uint64_t seedBase,
       const std::function<hw::HardwareConfig(Rng &)> &pickConfig)
{
    ImprovementArm arm;
    Rng rng = Rng(0x19a9e0b5eedull).substream(seedBase);
    for (unsigned run = 0; run < runs; ++run) {
        core::ExperimentParams params = base;
        params.config = pickConfig(rng);
        params.seed = seedBase * 104729 + run * 31 + 7;
        const core::ExperimentResult outcome =
            core::runExperiment(params);
        arm.perRunQuantileUs.push_back(
            outcome.aggregatedQuantile(tau, aggregation));
    }
    arm.mean = stats::mean(arm.perRunQuantileUs);
    arm.stddev = stats::stddev(arm.perRunQuantileUs);
    return arm;
}

} // namespace

ImprovementResult
evaluateImprovement(const AttributionResult &attribution,
                    const ImprovementParams &params)
{
    if (params.runsPerArm == 0)
        throw ConfigError("improvement evaluation needs runs");

    ImprovementResult result;
    result.tau = params.tau;
    result.recommended = bestConfiguration(attribution, params.tau);

    result.before = runArm(
        params.base, params.tau, params.aggregation, params.runsPerArm,
        params.seed, [](Rng &rng) {
            return hw::HardwareConfig::fromIndex(
                static_cast<unsigned>(rng.nextBelow(16)));
        });

    const hw::HardwareConfig best = result.recommended;
    result.after = runArm(
        params.base, params.tau, params.aggregation, params.runsPerArm,
        params.seed + 9973, [best](Rng &) { return best; });

    return result;
}

} // namespace analysis
} // namespace treadmill
