/**
 * @file
 * Text rendering of tables and distribution series.
 *
 * The bench binaries regenerate the paper's tables and figures as
 * text: Table IV-style coefficient tables, CDF series for the
 * latency-distribution figures, and generic aligned column tables.
 */

#ifndef TREADMILL_ANALYSIS_REPORT_H_
#define TREADMILL_ANALYSIS_REPORT_H_

#include <string>
#include <vector>

#include "analysis/attribution.h"

namespace treadmill {
namespace analysis {

/** A generic aligned text table. */
class TextTable
{
  public:
    /** @param header Column titles. */
    explicit TextTable(std::vector<std::string> header);

    /** Append one row (must match the header's column count). */
    void addRow(std::vector<std::string> row);

    /** Render with aligned columns; first column left-aligned, the
     *  rest right-aligned. */
    std::string render() const;

    std::size_t rowCount() const { return rows.size(); }

  private:
    std::vector<std::string> header;
    std::vector<std::vector<std::string>> rows;
};

/**
 * Render a Table IV-style quantile-regression coefficient table:
 * one row per term, Est./Std.Err/p-value blocks per quantile.
 *
 * @param significance Bold markers (here: a trailing '*') applied to
 *        rows with p below this threshold, as the paper highlights
 *        p < 0.05.
 */
std::string renderCoefficientTable(const AttributionResult &attribution,
                                   double significance = 0.05);

/**
 * Render a CDF as "value cumulative-probability" rows, downsampled to
 * @p points evenly spaced probabilities (a gnuplot-ready series).
 */
std::string renderCdf(std::vector<double> samples,
                      std::size_t points = 50);

/** Format microseconds compactly ("355 us", "<1 us"). */
std::string formatMicros(double us);

/** Format a p-value the way Table IV does ("<1e-06" under floor). */
std::string formatPValue(double p);

} // namespace analysis
} // namespace treadmill

#endif // TREADMILL_ANALYSIS_REPORT_H_
