/**
 * @file
 * Text rendering of tables and distribution series.
 *
 * The bench binaries regenerate the paper's tables and figures as
 * text: Table IV-style coefficient tables, CDF series for the
 * latency-distribution figures, and generic aligned column tables.
 */

#ifndef TREADMILL_ANALYSIS_REPORT_H_
#define TREADMILL_ANALYSIS_REPORT_H_

#include <string>
#include <vector>

#include "analysis/attribution.h"
#include "obs/trace.h"

namespace treadmill {
namespace analysis {

/** A generic aligned text table. */
class TextTable
{
  public:
    /** @param header Column titles. */
    explicit TextTable(std::vector<std::string> header);

    /** Append one row (must match the header's column count). */
    void addRow(std::vector<std::string> row);

    /** Render with aligned columns; first column left-aligned, the
     *  rest right-aligned. */
    std::string render() const;

    std::size_t rowCount() const { return rows.size(); }

  private:
    std::vector<std::string> header;
    std::vector<std::vector<std::string>> rows;
};

/**
 * Render a Table IV-style quantile-regression coefficient table:
 * one row per term, Est./Std.Err/p-value blocks per quantile.
 *
 * @param significance Bold markers (here: a trailing '*') applied to
 *        rows with p below this threshold, as the paper highlights
 *        p < 0.05.
 */
std::string renderCoefficientTable(const AttributionResult &attribution,
                                   double significance = 0.05);

/** Same rendering for a bare model set (any factorial design, e.g. a
 *  fault-injection study's fault-toggle factors). */
std::string
renderCoefficientTable(const std::vector<QuantileModel> &models,
                       double significance = 0.05);

/**
 * Render a CDF as "value cumulative-probability" rows, downsampled to
 * @p points evenly spaced probabilities (a gnuplot-ready series).
 */
std::string renderCdf(std::vector<double> samples,
                      std::size_t points = 50);

/**
 * The measured per-component latency breakdown of a traced run: which
 * component (client queueing, network, server NIC queue, worker queue,
 * service) owns each quantile of the distribution. This is the
 * measured attribution table that sits alongside the
 * quantile-regression attribution of renderCoefficientTable().
 */
struct DecompositionReport {
    /** One row per path component, in path order. */
    struct Component {
        std::string name;
        double meanUs = 0.0;
        /** Component quantiles at the requested taus. */
        std::vector<double> quantileUs;
        /** Share of the end-to-end mean owned by this component. */
        double meanShare = 0.0;
    };

    std::vector<Component> components;
    double endToEndMeanUs = 0.0;
    std::vector<double> endToEndQuantileUs;
    std::vector<double> quantiles; ///< The taus the columns report.
    std::size_t requestCount = 0;
};

/**
 * Decompose @p traces into per-component quantiles at @p quantiles
 * (defaults to P50/P99/P99.9). Throws NumericalError when empty.
 */
DecompositionReport
decomposeTraces(const std::vector<obs::RequestTrace> &traces,
                const std::vector<double> &quantiles = {0.5, 0.99,
                                                        0.999});

/** Render a DecompositionReport as an aligned text table. */
std::string renderDecompositionTable(const DecompositionReport &report);

/** Format microseconds compactly ("355 us", "<1 us"). */
std::string formatMicros(double us);

/** Format a p-value the way Table IV does ("<1e-06" under floor). */
std::string formatPValue(double p);

} // namespace analysis
} // namespace treadmill

#endif // TREADMILL_ANALYSIS_REPORT_H_
