/**
 * @file
 * Zero-copy readers over a study archive.
 *
 * RunReader loads one record file into a single 8-byte-aligned buffer,
 * validates the header, descriptor table, and every column CRC once,
 * and then hands out ColumnView spans that point straight into that
 * buffer -- refitting a study touches each byte exactly once (the
 * initial read) no matter how many passes the analysis makes.
 *
 * StudyReader binds the manifest to its run files and adds verify():
 * a full-archive integrity sweep that reports every problem it finds
 * (orphaned partial writes, missing sequence numbers, truncation, CRC
 * and version failures, factor-shape mismatches) instead of stopping
 * at the first.
 */

#ifndef TREADMILL_STORE_READER_H_
#define TREADMILL_STORE_READER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "store/format.h"
#include "store/record.h"

namespace treadmill {
namespace store {

/** A borrowed, typed view of one column's payload. Valid only while
 *  the RunReader that produced it is alive. */
template <typename T> struct ColumnView {
    const T *data = nullptr;
    std::size_t count = 0;

    const T *begin() const { return data; }
    const T *end() const { return data + count; }
    std::size_t size() const { return count; }
    bool empty() const { return count == 0; }
    const T &operator[](std::size_t i) const { return data[i]; }

    std::vector<T>
    toVector() const
    {
        return std::vector<T>(data, data + count);
    }
};

class RunReader
{
  public:
    /**
     * Load and validate the record file at @p path.
     *
     * @throws VersionError  schema version mismatch.
     * @throws FormatError   bad magic or structural violations.
     * @throws TruncatedError file shorter than its declared contents.
     * @throws ChecksumError  table or column CRC mismatch.
     */
    explicit RunReader(const std::string &path);

    /** Sequence number stamped in the header. */
    std::uint64_t runSeq() const { return seq; }

    /** True when the record carries column @p id. */
    bool has(ColumnId id) const;

    /** @name Zero-copy column access (throws FormatError when the
     *  column is absent or has a different encoding)
     * @{
     */
    ColumnView<double> doubles(ColumnId id) const;
    ColumnView<std::uint64_t> u64s(ColumnId id) const;
    /** Byte columns, returned as a string view into the buffer. */
    const char *bytesData(ColumnId id, std::size_t &size) const;
    /** @} */

    /** Materialize the full record (copies out of the buffer). */
    RunRecord record() const;

    /** Path this reader loaded. */
    const std::string &path() const { return file; }

  private:
    const ColumnDesc &find(ColumnId id, Encoding encoding) const;

    std::string file;
    std::vector<std::uint64_t> buffer; ///< 8-aligned file image.
    std::vector<ColumnDesc> columns;
    std::uint64_t seq = 0;
};

/** One problem found by StudyReader::verify(). */
struct VerifyProblem {
    std::string file;  ///< Offending path (or the study dir).
    std::string kind;  ///< Error class name ("ChecksumError", ...).
    std::string detail;
};

class StudyReader
{
  public:
    /**
     * Open the study at @p directory and parse its manifest.
     *
     * @throws FormatError  missing or malformed manifest.
     * @throws VersionError unknown manifest schema tag.
     */
    explicit StudyReader(const std::string &directory);

    const StudyMeta &meta() const { return studyMeta; }

    /** Runs the manifest declares. */
    std::uint64_t runCount() const { return studyMeta.runCount; }

    /** Path of run @p seq's record file. */
    std::string runPath(std::uint64_t seq) const;

    /** Open run @p seq (throws the RunReader's typed errors; throws
     *  TruncatedError when the file is missing entirely -- the
     *  signature of an interrupted write). */
    RunReader openRun(std::uint64_t seq) const;

    /**
     * Sweep the whole archive and report every integrity problem:
     * unreadable runs (with their typed error), missing sequence
     * numbers, orphaned ".tmp" partial writes, factor-count and
     * digest mismatches against the manifest. Empty result == clean.
     */
    std::vector<VerifyProblem> verify() const;

    /** Study directory. */
    const std::string &directory() const { return dir; }

  private:
    std::string dir;
    StudyMeta studyMeta;
};

} // namespace store
} // namespace treadmill

#endif // TREADMILL_STORE_READER_H_
