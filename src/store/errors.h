/**
 * @file
 * Typed failures of the run store.
 *
 * Every way an archive can be unreadable maps to a distinct exception
 * type so callers (and the corruption test suite) can tell *how* a
 * file is bad, not just that it is: a half-written file is not a
 * stale-schema file is not a flipped bit. All derive from StoreError,
 * which derives from treadmill::Error, so generic handlers still work.
 */

#ifndef TREADMILL_STORE_ERRORS_H_
#define TREADMILL_STORE_ERRORS_H_

#include <string>

#include "util/error.h"

namespace treadmill {
namespace store {

/** Base of every archive failure. */
class StoreError : public Error
{
  public:
    explicit StoreError(const std::string &what) : Error(what) {}
};

/** Structural violation: bad magic, misaligned or overlapping
 *  columns, non-ascending ids, missing required column. */
class FormatError : public StoreError
{
  public:
    explicit FormatError(const std::string &what) : StoreError(what) {}
};

/** The file ends before its declared contents do (torn write,
 *  truncated copy, or an orphaned partial-write temp file). */
class TruncatedError : public StoreError
{
  public:
    explicit TruncatedError(const std::string &what) : StoreError(what)
    {
    }
};

/** A CRC-32 over the descriptor table or a column payload does not
 *  match the stored value (bit rot, in-place corruption). */
class ChecksumError : public StoreError
{
  public:
    explicit ChecksumError(const std::string &what) : StoreError(what)
    {
    }
};

/** The file's schema version (or manifest schema tag) is not one this
 *  build reads. */
class VersionError : public StoreError
{
  public:
    explicit VersionError(const std::string &what) : StoreError(what) {}
};

} // namespace store
} // namespace treadmill

#endif // TREADMILL_STORE_ERRORS_H_
