#include "store/writer.h"

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "store/errors.h"
#include "store/format.h"
#include "util/checksum.h"
#include "util/error.h"
#include "util/json.h"
#include "util/strings.h"

namespace treadmill {
namespace store {

namespace fs = std::filesystem;

namespace {

std::string
runFileName(std::uint64_t seq)
{
    return strprintf("run-%06llu%s",
                     static_cast<unsigned long long>(seq), kRunSuffix);
}

/** Append raw bytes to the 8-byte-granular image, zero-padding the
 *  tail word so identical records give identical files. */
void
appendBytes(std::vector<std::uint64_t> &image, std::size_t &cursor,
            const void *data, std::size_t size)
{
    const std::size_t words = (cursor + size + 7) / 8;
    if (image.size() < words)
        image.resize(words, 0);
    std::memcpy(reinterpret_cast<char *>(image.data()) + cursor, data,
                size);
    cursor += size;
}

struct PendingColumn {
    ColumnId id;
    Encoding encoding;
    const void *data;
    std::uint64_t count; ///< Elements (bytes for Encoding::Bytes).
};

} // namespace

std::vector<std::uint64_t>
encodeRunRecord(const RunRecord &record, std::uint64_t runSeq)
{
    if (record.quantileTaus.size() != record.quantileUs.size())
        throw ConfigError(
            "RunRecord quantileTaus/quantileUs size mismatch");

    const double scalars[kScalarCount] = {
        record.targetRps, record.achievedRps,
        record.serverUtilization, record.simulatedSeconds};

    // Flatten the provenance rows into parallel columns.
    std::vector<double> provTaus, provMeans, provShares;
    std::vector<std::uint64_t> provKinds;
    provTaus.reserve(record.provenance.size());
    for (const ProvenanceRow &row : record.provenance) {
        provTaus.push_back(row.tau);
        provKinds.push_back(row.kind);
        provMeans.push_back(row.meanUs);
        provShares.push_back(row.share);
    }

    // Columns in ascending ColumnId order (a format invariant).
    std::vector<PendingColumn> columns;
    columns.push_back({ColumnId::Seed, Encoding::U64, &record.seed, 1});
    columns.push_back({ColumnId::FactorLevels, Encoding::F64,
                       record.factorLevels.data(),
                       record.factorLevels.size()});
    columns.push_back({ColumnId::QuantileTaus, Encoding::F64,
                       record.quantileTaus.data(),
                       record.quantileTaus.size()});
    columns.push_back({ColumnId::QuantileValues, Encoding::F64,
                       record.quantileUs.data(),
                       record.quantileUs.size()});
    columns.push_back({ColumnId::Reservoir, Encoding::F64,
                       record.reservoir.data(),
                       record.reservoir.size()});
    columns.push_back({ColumnId::ReservoirSeen, Encoding::U64,
                       &record.reservoirSeen, 1});
    columns.push_back({ColumnId::ReservoirCapacity, Encoding::U64,
                       &record.reservoirCapacity, 1});
    columns.push_back(
        {ColumnId::Scalars, Encoding::F64, scalars, kScalarCount});
    columns.push_back({ColumnId::ConfigDigest, Encoding::U64,
                       &record.configDigest, 1});
    columns.push_back({ColumnId::MetricsJson, Encoding::Bytes,
                       record.metricsJson.data(),
                       record.metricsJson.size()});
    if (!record.provenance.empty()) {
        columns.push_back({ColumnId::ProvenanceTaus, Encoding::F64,
                           provTaus.data(), provTaus.size()});
        columns.push_back({ColumnId::ProvenanceKinds, Encoding::U64,
                           provKinds.data(), provKinds.size()});
        columns.push_back({ColumnId::ProvenanceMeans, Encoding::F64,
                           provMeans.data(), provMeans.size()});
        columns.push_back({ColumnId::ProvenanceShares, Encoding::F64,
                           provShares.data(), provShares.size()});
    }

    FileHeader header;
    header.columnCount = static_cast<std::uint32_t>(columns.size());
    header.runSeq = runSeq;

    const std::size_t tableBytes = sizeof(FileHeader) +
                                   columns.size() * sizeof(ColumnDesc) +
                                   8; // tableCrc + pad
    std::uint64_t offset = tableBytes; // already 8-aligned

    std::vector<ColumnDesc> descs;
    descs.reserve(columns.size());
    for (const PendingColumn &col : columns) {
        ColumnDesc d;
        d.id = static_cast<std::uint32_t>(col.id);
        d.encoding = static_cast<std::uint32_t>(col.encoding);
        d.offset = offset;
        d.count = col.count;
        const std::uint64_t bytes =
            payloadBytes(col.encoding, col.count);
        d.crc = crc32(col.count != 0 ? col.data : "",
                      static_cast<std::size_t>(bytes));
        descs.push_back(d);
        offset += (bytes + 7) / 8 * 8; // keep payloads 8-aligned
    }

    std::vector<std::uint64_t> image;
    image.reserve(static_cast<std::size_t>((offset + 7) / 8));
    std::size_t cursor = 0;
    appendBytes(image, cursor, &header, sizeof header);
    appendBytes(image, cursor, descs.data(),
                descs.size() * sizeof(ColumnDesc));
    const std::uint32_t tableCrc =
        crc32(image.data(), cursor); // header + descriptors
    const std::uint32_t pad = 0;
    appendBytes(image, cursor, &tableCrc, sizeof tableCrc);
    appendBytes(image, cursor, &pad, sizeof pad);

    for (std::size_t i = 0; i < columns.size(); ++i) {
        // Zero-fill any gap introduced by 8-alignment.
        cursor = static_cast<std::size_t>(descs[i].offset);
        const std::uint64_t bytes = payloadBytes(
            static_cast<Encoding>(descs[i].encoding), descs[i].count);
        if (bytes != 0)
            appendBytes(image, cursor, columns[i].data,
                        static_cast<std::size_t>(bytes));
    }
    // The image's logical size is `offset`; resize to the final word
    // boundary (resize in appendBytes already zero-padded the tail).
    image.resize(static_cast<std::size_t>((offset + 7) / 8), 0);
    return image;
}

std::size_t
encodedByteSize(const std::vector<std::uint64_t> &image)
{
    return image.size() * 8;
}

void
atomicWriteFile(const std::string &path, const void *data,
                std::size_t size)
{
    const std::string tmp = path + kTmpSuffix;
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out)
            throw StoreError("cannot open for writing: " + tmp);
        out.write(static_cast<const char *>(data),
                  static_cast<std::streamsize>(size));
        out.flush();
        if (!out.good())
            throw StoreError("short write to " + tmp);
    }
    std::error_code ec;
    fs::rename(tmp, path, ec);
    if (ec)
        throw StoreError("cannot rename " + tmp + " to " + path + ": " +
                         ec.message());
}

StudyWriter::StudyWriter(const std::string &directory, StudyMeta meta,
                         const Options &options)
    : dir(directory), studyMeta(std::move(meta))
{
    std::error_code ec;
    fs::create_directories(fs::path(dir) / kRunDirName, ec);
    if (ec)
        throw StoreError("cannot create study directory " + dir + ": " +
                         ec.message());

    const fs::path manifest = fs::path(dir) / kManifestName;
    if (fs::exists(manifest)) {
        if (!options.overwrite)
            throw ConfigError("study directory already holds a "
                              "manifest: " +
                              dir + " (pass overwrite to replace)");
        // Deterministically clear the previous study's artifacts.
        fs::remove(manifest);
        fs::remove(fs::path(dir) / kModelsName);
        for (const auto &entry :
             fs::directory_iterator(fs::path(dir) / kRunDirName))
            fs::remove(entry.path());
    }

    studyMeta.runCount = 0;
    writeManifest(0);
}

void
StudyWriter::writeManifest(std::uint64_t runCount)
{
    json::Object doc;
    doc["schema"] = json::Value(kManifestSchema);
    doc["study"] = json::Value(studyMeta.name);
    json::Array factors;
    for (const std::string &f : studyMeta.factors)
        factors.push_back(json::Value(f));
    doc["factors"] = json::Value(std::move(factors));
    json::Array taus;
    for (double q : studyMeta.quantiles)
        taus.push_back(json::Value(q));
    doc["quantiles"] = json::Value(std::move(taus));
    doc["config_digest"] = json::Value(
        strprintf("0x%016llx", static_cast<unsigned long long>(
                                   studyMeta.configDigest)));
    doc["runs"] =
        json::Value(static_cast<std::int64_t>(runCount));
    const std::string text =
        json::Value(std::move(doc)).dumpPretty() + "\n";
    atomicWriteFile((fs::path(dir) / kManifestName).string(),
                    text.data(), text.size());
}

void
StudyWriter::writeRun(std::uint64_t seq, const RunRecord &record)
{
    if (record.factorLevels.size() != studyMeta.factors.size())
        throw ConfigError(strprintf(
            "run %llu has %zu factor levels, study declares %zu",
            static_cast<unsigned long long>(seq),
            record.factorLevels.size(), studyMeta.factors.size()));

    const std::vector<std::uint64_t> image =
        encodeRunRecord(record, seq);
    const std::string path =
        (fs::path(dir) / kRunDirName / runFileName(seq)).string();
    atomicWriteFile(path, image.data(), encodedByteSize(image));

    std::lock_guard<std::mutex> lock(mutex);
    written.insert(seq);
}

std::uint64_t
StudyWriter::append(const RunRecord &record)
{
    std::uint64_t seq = 0;
    {
        std::lock_guard<std::mutex> lock(mutex);
        if (!written.empty())
            seq = *written.rbegin() + 1;
    }
    writeRun(seq, record);
    return seq;
}

std::uint64_t
StudyWriter::runsWritten() const
{
    std::lock_guard<std::mutex> lock(mutex);
    return written.size();
}

void
StudyWriter::finish()
{
    std::uint64_t count = 0;
    {
        std::lock_guard<std::mutex> lock(mutex);
        count = written.size();
        if (!written.empty() && *written.rbegin() != count - 1)
            throw StoreError(strprintf(
                "study %s has a sequence gap: %llu runs written but "
                "highest seq is %llu",
                dir.c_str(), static_cast<unsigned long long>(count),
                static_cast<unsigned long long>(*written.rbegin())));
    }
    studyMeta.runCount = count;
    writeManifest(count);
}

} // namespace store
} // namespace treadmill
