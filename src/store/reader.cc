#include "store/reader.h"

#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <utility>

#include "store/errors.h"
#include "util/checksum.h"
#include "util/json.h"
#include "util/strings.h"

namespace treadmill {
namespace store {

namespace fs = std::filesystem;

namespace {

const char *
encodingName(Encoding e)
{
    switch (e) {
    case Encoding::F64: return "f64";
    case Encoding::U64: return "u64";
    case Encoding::Bytes: return "bytes";
    }
    return "?";
}

std::string
runFileName(std::uint64_t seq)
{
    return strprintf("run-%06llu%s",
                     static_cast<unsigned long long>(seq), kRunSuffix);
}

} // namespace

RunReader::RunReader(const std::string &path) : file(path)
{
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    if (!in)
        throw TruncatedError("cannot open run file: " + path);
    const std::streamoff size = in.tellg();
    in.seekg(0);
    buffer.assign((static_cast<std::size_t>(size) + 7) / 8, 0);
    in.read(reinterpret_cast<char *>(buffer.data()), size);
    if (!in.good())
        throw TruncatedError("short read from " + path);
    const std::size_t bytes = static_cast<std::size_t>(size);

    if (bytes < sizeof(FileHeader))
        throw TruncatedError(strprintf(
            "%s: %zu bytes is smaller than the %zu-byte header",
            path.c_str(), bytes, sizeof(FileHeader)));
    FileHeader header;
    std::memcpy(static_cast<void *>(&header), buffer.data(),
                sizeof header);
    if (header.magic != kRunMagic)
        throw FormatError(path + ": not a run record file (bad magic)");
    if (header.version != kRunVersion)
        throw VersionError(strprintf(
            "%s: schema version %u, this build reads version %u",
            path.c_str(), header.version, kRunVersion));
    seq = header.runSeq;

    const std::size_t tableBytes =
        sizeof(FileHeader) +
        static_cast<std::size_t>(header.columnCount) *
            sizeof(ColumnDesc) +
        8;
    if (bytes < tableBytes)
        throw TruncatedError(strprintf(
            "%s: descriptor table for %u columns needs %zu bytes, "
            "file has %zu",
            path.c_str(), header.columnCount, tableBytes, bytes));

    const char *raw = reinterpret_cast<const char *>(buffer.data());
    std::uint32_t storedTableCrc = 0;
    std::memcpy(&storedTableCrc, raw + tableBytes - 8,
                sizeof storedTableCrc);
    const std::uint32_t actualTableCrc = crc32(raw, tableBytes - 8);
    if (storedTableCrc != actualTableCrc)
        throw ChecksumError(strprintf(
            "%s: descriptor table CRC mismatch (stored %08x, "
            "computed %08x)",
            path.c_str(), storedTableCrc, actualTableCrc));

    columns.resize(header.columnCount);
    std::memcpy(static_cast<void *>(columns.data()),
                raw + sizeof(FileHeader),
                columns.size() * sizeof(ColumnDesc));

    std::uint32_t lastId = 0;
    for (const ColumnDesc &col : columns) {
        if (col.id <= lastId)
            throw FormatError(strprintf(
                "%s: column ids not strictly ascending at id %u",
                path.c_str(), col.id));
        lastId = col.id;
        if (col.encoding >
            static_cast<std::uint32_t>(Encoding::Bytes))
            throw FormatError(
                strprintf("%s: column %u has unknown encoding %u",
                          path.c_str(), col.id, col.encoding));
        const Encoding enc = static_cast<Encoding>(col.encoding);
        if (enc != Encoding::Bytes && col.offset % 8 != 0)
            throw FormatError(strprintf(
                "%s: numeric column %u at misaligned offset %llu",
                path.c_str(), col.id,
                static_cast<unsigned long long>(col.offset)));
        const std::uint64_t payload = payloadBytes(enc, col.count);
        if (col.offset < tableBytes ||
            col.offset + payload > bytes)
            throw TruncatedError(strprintf(
                "%s: column %u [%llu, +%llu) reaches past the "
                "%zu-byte file",
                path.c_str(), col.id,
                static_cast<unsigned long long>(col.offset),
                static_cast<unsigned long long>(payload), bytes));
        const std::uint32_t actual =
            crc32(raw + col.offset,
                  static_cast<std::size_t>(payload));
        if (actual != col.crc)
            throw ChecksumError(strprintf(
                "%s: column %u payload CRC mismatch (stored %08x, "
                "computed %08x)",
                path.c_str(), col.id, col.crc, actual));
    }
}

bool
RunReader::has(ColumnId id) const
{
    for (const ColumnDesc &col : columns)
        if (col.id == static_cast<std::uint32_t>(id))
            return true;
    return false;
}

const ColumnDesc &
RunReader::find(ColumnId id, Encoding encoding) const
{
    for (const ColumnDesc &col : columns) {
        if (col.id != static_cast<std::uint32_t>(id))
            continue;
        if (col.encoding != static_cast<std::uint32_t>(encoding))
            throw FormatError(strprintf(
                "%s: column %u is %s, requested as %s", file.c_str(),
                col.id,
                encodingName(static_cast<Encoding>(col.encoding)),
                encodingName(encoding)));
        return col;
    }
    throw FormatError(strprintf("%s: column %u absent", file.c_str(),
                                static_cast<std::uint32_t>(id)));
}

ColumnView<double>
RunReader::doubles(ColumnId id) const
{
    const ColumnDesc &col = find(id, Encoding::F64);
    const char *raw = reinterpret_cast<const char *>(buffer.data());
    return {reinterpret_cast<const double *>(raw + col.offset),
            static_cast<std::size_t>(col.count)};
}

ColumnView<std::uint64_t>
RunReader::u64s(ColumnId id) const
{
    const ColumnDesc &col = find(id, Encoding::U64);
    const char *raw = reinterpret_cast<const char *>(buffer.data());
    return {reinterpret_cast<const std::uint64_t *>(raw + col.offset),
            static_cast<std::size_t>(col.count)};
}

const char *
RunReader::bytesData(ColumnId id, std::size_t &size) const
{
    const ColumnDesc &col = find(id, Encoding::Bytes);
    size = static_cast<std::size_t>(col.count);
    return reinterpret_cast<const char *>(buffer.data()) + col.offset;
}

RunRecord
RunReader::record() const
{
    RunRecord rec;
    rec.seed = u64s(ColumnId::Seed)[0];
    rec.configDigest = u64s(ColumnId::ConfigDigest)[0];
    rec.factorLevels = doubles(ColumnId::FactorLevels).toVector();
    rec.quantileTaus = doubles(ColumnId::QuantileTaus).toVector();
    rec.quantileUs = doubles(ColumnId::QuantileValues).toVector();
    rec.reservoir = doubles(ColumnId::Reservoir).toVector();
    rec.reservoirSeen = u64s(ColumnId::ReservoirSeen)[0];
    rec.reservoirCapacity = u64s(ColumnId::ReservoirCapacity)[0];
    const ColumnView<double> scalars = doubles(ColumnId::Scalars);
    if (scalars.size() != kScalarCount)
        throw FormatError(strprintf(
            "%s: scalar column has %zu entries, expected %llu",
            file.c_str(), scalars.size(),
            static_cast<unsigned long long>(kScalarCount)));
    rec.targetRps = scalars[0];
    rec.achievedRps = scalars[1];
    rec.serverUtilization = scalars[2];
    rec.simulatedSeconds = scalars[3];
    std::size_t metricsSize = 0;
    const char *metrics = bytesData(ColumnId::MetricsJson, metricsSize);
    rec.metricsJson.assign(metrics, metricsSize);
    if (has(ColumnId::ProvenanceTaus)) {
        const auto taus = doubles(ColumnId::ProvenanceTaus);
        const auto kinds = u64s(ColumnId::ProvenanceKinds);
        const auto means = doubles(ColumnId::ProvenanceMeans);
        const auto shares = doubles(ColumnId::ProvenanceShares);
        if (kinds.size() != taus.size() ||
            means.size() != taus.size() ||
            shares.size() != taus.size())
            throw FormatError(file +
                              ": ragged provenance columns");
        rec.provenance.reserve(taus.size());
        for (std::size_t i = 0; i < taus.size(); ++i)
            rec.provenance.push_back(
                {taus[i], kinds[i], means[i], shares[i]});
    }
    return rec;
}

StudyReader::StudyReader(const std::string &directory) : dir(directory)
{
    const fs::path manifest = fs::path(dir) / kManifestName;
    if (!fs::exists(manifest))
        throw FormatError("no " + std::string(kManifestName) +
                          " in study directory " + dir);
    json::Value doc;
    try {
        doc = json::parseFile(manifest.string());
    } catch (const Error &e) {
        throw FormatError(manifest.string() +
                          ": malformed manifest: " + e.what());
    }
    const std::string schema = doc.stringOr("schema", "");
    if (schema != kManifestSchema)
        throw VersionError(manifest.string() + ": manifest schema '" +
                           schema + "', this build reads '" +
                           kManifestSchema + "'");
    studyMeta.name = doc.stringOr("study", "");
    for (const json::Value &f : doc.at("factors").asArray())
        studyMeta.factors.push_back(f.asString());
    for (const json::Value &q : doc.at("quantiles").asArray())
        studyMeta.quantiles.push_back(q.asNumber());
    studyMeta.runCount =
        static_cast<std::uint64_t>(doc.intOr("runs", 0));
    const std::string digest = doc.stringOr("config_digest", "0x0");
    studyMeta.configDigest =
        std::strtoull(digest.c_str(), nullptr, 16);
}

std::string
StudyReader::runPath(std::uint64_t seq) const
{
    return (fs::path(dir) / kRunDirName / runFileName(seq)).string();
}

RunReader
StudyReader::openRun(std::uint64_t seq) const
{
    const std::string path = runPath(seq);
    if (!fs::exists(path))
        throw TruncatedError(
            path + ": run file missing (interrupted write?)");
    RunReader reader(path);
    if (reader.runSeq() != seq)
        throw FormatError(strprintf(
            "%s: header stamps seq %llu, file name says %llu",
            path.c_str(),
            static_cast<unsigned long long>(reader.runSeq()),
            static_cast<unsigned long long>(seq)));
    return reader;
}

std::vector<VerifyProblem>
StudyReader::verify() const
{
    std::vector<VerifyProblem> problems;
    const auto add = [&](const std::string &path,
                         const std::string &kind,
                         const std::string &detail) {
        problems.push_back({path, kind, detail});
    };

    // Orphaned temp files are the footprint of an interrupted write.
    const fs::path runsDir = fs::path(dir) / kRunDirName;
    if (fs::exists(runsDir)) {
        for (const auto &entry : fs::directory_iterator(runsDir)) {
            const std::string name = entry.path().filename().string();
            if (name.size() > 4 &&
                name.compare(name.size() - 4, 4, kTmpSuffix) == 0)
                add(entry.path().string(), "TruncatedError",
                    "orphaned partial write (temp file left behind)");
        }
    }

    // The digest invariant: a run's config digest is a pure function
    // of its factor levels (levels are the only thing a study varies
    // besides the seed, and the digest excludes the seed). Two runs
    // with equal levels but different digests mean foreign records
    // were mixed into the archive.
    std::map<std::vector<double>, std::pair<std::uint64_t, std::uint64_t>>
        digestByLevels;

    for (std::uint64_t seq = 0; seq < studyMeta.runCount; ++seq) {
        try {
            const RunReader reader = openRun(seq);
            const RunRecord rec = reader.record();
            if (rec.factorLevels.size() != studyMeta.factors.size())
                add(runPath(seq), "FormatError",
                    strprintf("%zu factor levels, manifest declares "
                              "%zu factors",
                              rec.factorLevels.size(),
                              studyMeta.factors.size()));
            const auto [it, inserted] = digestByLevels.emplace(
                rec.factorLevels,
                std::make_pair(rec.configDigest, seq));
            if (!inserted && it->second.first != rec.configDigest)
                add(runPath(seq), "FormatError",
                    strprintf("config digest 0x%016llx differs from "
                              "run %llu's 0x%016llx at the same "
                              "factor levels",
                              static_cast<unsigned long long>(
                                  rec.configDigest),
                              static_cast<unsigned long long>(
                                  it->second.second),
                              static_cast<unsigned long long>(
                                  it->second.first)));
        } catch (const VersionError &e) {
            add(runPath(seq), "VersionError", e.what());
        } catch (const ChecksumError &e) {
            add(runPath(seq), "ChecksumError", e.what());
        } catch (const TruncatedError &e) {
            add(runPath(seq), "TruncatedError", e.what());
        } catch (const FormatError &e) {
            add(runPath(seq), "FormatError", e.what());
        } catch (const StoreError &e) {
            add(runPath(seq), "StoreError", e.what());
        }
    }
    return problems;
}

} // namespace store
} // namespace treadmill
