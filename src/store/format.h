/**
 * @file
 * On-disk layout of the run store (schema "tmstore/1").
 *
 * A *study* is one directory:
 *
 *     <study>/
 *       MANIFEST.json        study metadata (schema, factors, digest)
 *       runs/run-000000.tmr  one columnar record file per run
 *       runs/run-000001.tmr  ...
 *
 * Each .tmr file is column-oriented and fully self-describing:
 *
 *     +--------------------+  FileHeader (24 bytes)
 *     | magic   "TMR1"     |
 *     | version u32        |
 *     | columnCount u32    |
 *     | reserved u32       |
 *     | runSeq  u64        |
 *     +--------------------+  ColumnDesc[columnCount] (32 bytes each)
 *     | id encoding        |
 *     | offset count       |
 *     | crc32  reserved    |
 *     +--------------------+  tableCrc u32 + pad u32
 *     | column payloads    |  8-byte aligned, little-endian,
 *     | ...                |  each guarded by its ColumnDesc crc32
 *     +--------------------+
 *
 * Invariants the reader enforces (each violation is a typed error,
 * see errors.h):
 *  - magic and version match (VersionError otherwise);
 *  - header, table, and every declared column lie inside the file
 *    (TruncatedError);
 *  - the descriptor-table CRC and every column CRC verify
 *    (ChecksumError);
 *  - numeric column offsets are 8-byte aligned and ids are unique
 *    and ascending (FormatError).
 *
 * Writers emit columns in ascending ColumnId order with no gaps or
 * padding bytes left uninitialized, so a record file's bytes are a
 * pure function of the RunRecord it stores: identical (params, seed)
 * produce byte-identical archives, and the determinism suite can
 * extend to on-disk artifacts.
 */

#ifndef TREADMILL_STORE_FORMAT_H_
#define TREADMILL_STORE_FORMAT_H_

#include <cstdint>

namespace treadmill {
namespace store {

/** File magic: "TMR1" little-endian. */
constexpr std::uint32_t kRunMagic = 0x31524D54u;

/** Current schema version of run record files. */
constexpr std::uint32_t kRunVersion = 1;

/** Manifest schema tag. */
constexpr const char *kManifestSchema = "tmstore/1";

/** Payload encodings. */
enum class Encoding : std::uint32_t {
    F64 = 0,   ///< IEEE-754 doubles, count = element count.
    U64 = 1,   ///< Unsigned 64-bit integers, count = element count.
    Bytes = 2, ///< Raw bytes (UTF-8 for text), count = byte count.
};

/**
 * Column identifiers. Values are part of the on-disk format: never
 * renumber, only append. Optional columns are simply absent.
 */
enum class ColumnId : std::uint32_t {
    Seed = 1,              ///< u64[1] run seed.
    FactorLevels = 2,      ///< f64[k] levels in manifest factor order.
    QuantileTaus = 3,      ///< f64[q] taus of the snapshots, ascending.
    QuantileValues = 4,    ///< f64[q] aggregated quantile, microseconds.
    Reservoir = 5,         ///< f64[m] merged latency reservoir.
    ReservoirSeen = 6,     ///< u64[1] stream length it represents.
    ReservoirCapacity = 7, ///< u64[1] reservoir capacity.
    Scalars = 8,           ///< f64[4] target RPS, achieved RPS,
                           ///<        server utilization, sim seconds.
    ConfigDigest = 9,      ///< u64[1] fnv1a64 of the canonical config.
    MetricsJson = 10,      ///< bytes: compact metrics snapshot JSON.
    ProvenanceTaus = 11,   ///< f64[p] tau of each provenance row.
    ProvenanceKinds = 12,  ///< u64[p] obs::SegmentKind of each row.
    ProvenanceMeans = 13,  ///< f64[p] segment mean in the band, us.
    ProvenanceShares = 14, ///< f64[p] share of the band's end-to-end.
};

/** Number of doubles in the Scalars column. */
constexpr std::uint64_t kScalarCount = 4;

/** Fixed-size file header (immediately at offset 0). */
struct FileHeader {
    std::uint32_t magic = kRunMagic;
    std::uint32_t version = kRunVersion;
    std::uint32_t columnCount = 0;
    std::uint32_t reserved = 0;
    std::uint64_t runSeq = 0;
};
static_assert(sizeof(FileHeader) == 24, "on-disk header layout");

/** Fixed-size per-column descriptor. */
struct ColumnDesc {
    std::uint32_t id = 0;
    std::uint32_t encoding = 0;
    std::uint64_t offset = 0; ///< Absolute file offset of the payload.
    std::uint64_t count = 0;  ///< Elements (bytes for Encoding::Bytes).
    std::uint32_t crc = 0;    ///< CRC-32 of the payload bytes.
    std::uint32_t reserved = 0;
};
static_assert(sizeof(ColumnDesc) == 32, "on-disk descriptor layout");

/** Payload byte size of one column. */
constexpr std::uint64_t
payloadBytes(Encoding encoding, std::uint64_t count)
{
    return encoding == Encoding::Bytes ? count : count * 8;
}

/** Run file name for sequence number @p seq ("run-000007.tmr"). */
inline constexpr const char *kRunDirName = "runs";
inline constexpr const char *kRunSuffix = ".tmr";
inline constexpr const char *kTmpSuffix = ".tmp";
inline constexpr const char *kManifestName = "MANIFEST.json";
inline constexpr const char *kModelsName = "models.json";

} // namespace store
} // namespace treadmill

#endif // TREADMILL_STORE_FORMAT_H_
