/**
 * @file
 * The in-memory shape of one archived run and of a study's metadata.
 *
 * RunRecord is deliberately plain data -- no simulator types -- so the
 * store can sit below core in the layering DAG: core converts an
 * ExperimentResult into a RunRecord (core/run_record.h), the store
 * persists and re-reads it, and analysis refits from it without ever
 * touching a Simulation.
 */

#ifndef TREADMILL_STORE_RECORD_H_
#define TREADMILL_STORE_RECORD_H_

#include <cstdint>
#include <string>
#include <vector>

namespace treadmill {
namespace store {

/** One tail-provenance row: segment @p kind's contribution within the
 *  @p tau band (see analysis::tailProvenance). Kinds are stored as raw
 *  integers so the store does not depend on obs. */
struct ProvenanceRow {
    double tau = 0.0;
    std::uint64_t kind = 0; ///< obs::SegmentKind as an integer.
    double meanUs = 0.0;
    double share = 0.0;
};

/** Everything one run contributes to the archive. */
struct RunRecord {
    std::uint64_t seed = 0;
    /** 64-bit digest of the run's configuration (seed excluded). */
    std::uint64_t configDigest = 0;
    /** Factor levels in the study's canonical factor order. */
    std::vector<double> factorLevels;
    /** Aggregated quantile snapshots: taus (ascending) and values. */
    std::vector<double> quantileTaus;
    std::vector<double> quantileUs;
    /** Merged latency reservoir (uniform sub-sample of the run). */
    std::vector<double> reservoir;
    std::uint64_t reservoirSeen = 0;
    std::uint64_t reservoirCapacity = 0;
    /** Scalar metric snapshot. */
    double targetRps = 0.0;
    double achievedRps = 0.0;
    double serverUtilization = 0.0;
    double simulatedSeconds = 0.0;
    /** Compact JSON dump of the run's metrics registry. */
    std::string metricsJson;
    /** Optional tail-provenance segment shares (empty when the run
     *  had no span tracing). */
    std::vector<ProvenanceRow> provenance;
};

/** Study-level metadata, persisted as MANIFEST.json. */
struct StudyMeta {
    std::string name;
    /** Factor names matching every record's factorLevels order. */
    std::vector<std::string> factors;
    /** Taus every record snapshots (ascending). */
    std::vector<double> quantiles;
    /** Digest of the study's base configuration. */
    std::uint64_t configDigest = 0;
    /** Runs the study contains (finalized by StudyWriter::finish). */
    std::uint64_t runCount = 0;
};

} // namespace store
} // namespace treadmill

#endif // TREADMILL_STORE_RECORD_H_
