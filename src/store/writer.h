/**
 * @file
 * StudyWriter: append runs to a columnar study archive.
 *
 * Durability model: every file (manifest and run records alike) is
 * written to a sibling ".tmp" path and atomically renamed into place,
 * so a crash mid-write leaves either the old file, no file, or an
 * orphaned temp -- never a half-written record under its real name.
 * StudyReader ignores temp files and verify() reports them, giving
 * the partial-write recovery path a visible, typed surface.
 *
 * Concurrency model: writeRun(seq, record) is thread-safe and
 * seq-addressed. Each sequence number maps to its own file whose
 * bytes depend only on the record, so the StudyDriver's workers can
 * persist runs in any completion order and the archive still comes
 * out byte-identical to the serial schedule.
 */

#ifndef TREADMILL_STORE_WRITER_H_
#define TREADMILL_STORE_WRITER_H_

#include <cstdint>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "store/record.h"

namespace treadmill {
namespace store {

/** Serialize one run record to its on-disk byte image. */
std::vector<std::uint64_t> encodeRunRecord(const RunRecord &record,
                                           std::uint64_t runSeq);

/** Byte size of an encoded record (the image is 8-byte granular). */
std::size_t encodedByteSize(const std::vector<std::uint64_t> &image);

class StudyWriter
{
  public:
    struct Options {
        /** Remove any existing manifest/run/temp files first. Without
         *  it, a non-empty study directory is a ConfigError. */
        bool overwrite = false;
    };

    /**
     * Create the study directory (and its runs/ subdirectory) and
     * write the initial manifest.
     *
     * @throws ConfigError when the directory already holds a study
     *         and overwrite is not set.
     */
    StudyWriter(const std::string &directory, StudyMeta meta,
                const Options &options);
    StudyWriter(const std::string &directory, StudyMeta meta)
        : StudyWriter(directory, std::move(meta), Options{false})
    {
    }

    /** Persist @p record as run @p seq. Thread-safe; any seq order. */
    void writeRun(std::uint64_t seq, const RunRecord &record);

    /** Persist @p record under the next unused sequence number. */
    std::uint64_t append(const RunRecord &record);

    /**
     * Finalize the manifest with the run count written so far.
     *
     * @throws StoreError when the written sequence numbers leave a
     *         gap (the archive would lie about its run count).
     */
    void finish();

    /** Study directory this writer owns. */
    const std::string &directory() const { return dir; }

    /** Runs written so far. */
    std::uint64_t runsWritten() const;

    /** The (mutable run count aside) metadata being written. */
    const StudyMeta &meta() const { return studyMeta; }

  private:
    void writeManifest(std::uint64_t runCount);

    std::string dir;
    StudyMeta studyMeta;
    mutable std::mutex mutex;
    std::set<std::uint64_t> written; // tm:guarded_by(mutex)
};

/** Atomically write @p bytes to @p path via a ".tmp" sibling. */
void atomicWriteFile(const std::string &path, const void *data,
                     std::size_t size);

} // namespace store
} // namespace treadmill

#endif // TREADMILL_STORE_WRITER_H_
