/**
 * @file
 * Ground-truth latency capture at the server NIC (the tcpdump analogue).
 *
 * The paper validates load-tester measurements against tcpdump running
 * on an isolated core, matching request and response packets by TCP
 * sequence id and differencing the NIC timestamps. PacketCapture does
 * exactly that against simulated NIC events, giving each experiment an
 * incorruptible server-residence latency distribution.
 */

#ifndef TREADMILL_NET_CAPTURE_H_
#define TREADMILL_NET_CAPTURE_H_

#include <cstdint>
#include <vector>

#include "net/packet.h"
#include "util/flat_map.h"
#include "util/types.h"

namespace treadmill {
namespace net {

/** Matches request/response packet pairs and records their latency. */
class PacketCapture
{
  public:
    PacketCapture() = default;

    /** Record a request packet arriving at the NIC at @p when. */
    void onRequest(const Packet &packet, SimTime when);

    /** Record a response packet leaving the NIC at @p when. */
    void onResponse(const Packet &packet, SimTime when);

    /** Matched request->response latencies, in microseconds. */
    const std::vector<double> &latenciesUs() const { return matched; }

    /** Requests seen so far. */
    std::uint64_t requestsSeen() const { return requests; }

    /** Responses that arrived with no matching request. */
    std::uint64_t unmatchedResponses() const { return unmatched; }

    /** Requests still awaiting a response. */
    std::size_t outstanding() const { return pending.size(); }

    /** Forget everything recorded so far (e.g., at warm-up end). */
    void reset();

  private:
    /// Flat map: one request in flight = one slot, no per-packet
    /// node allocation (see util/flat_map.h).
    util::FlatU64Map<SimTime> pending;
    std::vector<double> matched;
    std::uint64_t requests = 0;
    std::uint64_t unmatched = 0;
};

} // namespace net
} // namespace treadmill

#endif // TREADMILL_NET_CAPTURE_H_
