/**
 * @file
 * Cluster topology: racks, switch hops, and client-to-server paths.
 *
 * The paper's Fig 2 shows a client on a different rack dominating the
 * tail of a naively merged latency distribution; Path distinguishes
 * same-rack (one ToR switch) from cross-rack (ToR - aggregation - ToR)
 * routes so that experiment reproduces.
 */

#ifndef TREADMILL_NET_TOPOLOGY_H_
#define TREADMILL_NET_TOPOLOGY_H_

#include <memory>
#include <string>
#include <vector>

#include "net/link.h"
#include "net/packet.h"
#include "sim/simulation.h"
#include "util/types.h"

namespace treadmill {
namespace net {

/** Per-hop forwarding latency of a switch. */
constexpr SimDuration kSwitchHopLatency = nanoseconds(450);

/** Extra one-way latency for leaving the rack: the aggregation-layer
 *  hops plus their queueing, which the paper's Fig 2 client suffered. */
constexpr SimDuration kCrossRackExtraPropagation = microseconds(40);

/**
 * An ordered sequence of links a packet traverses in one direction.
 * Each hop adds switch forwarding latency; each link adds serialization,
 * queueing, and propagation.
 */
class Path
{
  public:
    Path() = default;
    Path(Path &&) noexcept = default;
    Path &operator=(Path &&) noexcept = default;

    /** Append a link to the path. */
    void addLink(Link *link);

    /** Number of hops. */
    std::size_t hopCount() const { return links.size(); }

    /**
     * Send @p packet down the path; @p onDelivered fires at the far end.
     */
    void send(sim::Simulation &sim, const Packet &packet,
              DeliveryFn onDelivered) const;

  private:
    /** A packet in flight along this path. Pooled so per-hop closures
     *  capture only (this, slot index) and traversal allocates
     *  nothing; the final delivery callback rides in the slot. */
    struct Transit {
        sim::Simulation *sim;
        Packet packet;
        std::size_t hop;
        DeliveryFn deliver;
    };

    /** Transmit the transit's current hop; advances across switch
     *  latency until the last link, then fires its callback. */
    void sendHop(std::uint32_t transit) const;

    std::vector<Link *> links;
    mutable util::RawPool<Transit> transits;
};

/**
 * A two-rack cluster: the server and its clients, some of which may be
 * placed on a remote rack. Owns every link and hands out forward and
 * reverse paths per client.
 */
class Cluster
{
  public:
    /** Per-client placement and link parameters. */
    struct ClientSpec {
        bool remoteRack = false; ///< True: client sits on the other rack.
        double uplinkGbps = 10.0;
        double downlinkGbps = 10.0;
    };

    /**
     * @param sim Owning simulation.
     * @param serverLinkGbps Bandwidth of the (shared) server access link.
     * @param clients One spec per client machine.
     */
    Cluster(sim::Simulation &sim, double serverLinkGbps,
            const std::vector<ClientSpec> &clients);

    Cluster(const Cluster &) = delete;
    Cluster &operator=(const Cluster &) = delete;

    std::size_t clientCount() const { return toServer.size(); }

    /** Path from client @p i to the server. */
    const Path &clientToServer(std::size_t i) const;

    /** Path from the server back to client @p i. */
    const Path &serverToClient(std::size_t i) const;

    /** True when client @p i was placed on the remote rack. */
    bool isRemoteRack(std::size_t i) const { return remote[i]; }

    /** The shared server ingress link (for utilization inspection). */
    const Link &serverIngress() const { return *serverIn; }

    /** The shared server egress link. */
    const Link &serverEgress() const { return *serverOut; }

    /**
     * Every link in the cluster (client up/downlinks plus the shared
     * server links), for the fault injector's name-pattern targeting.
     */
    std::vector<Link *> allLinks();

  private:
    std::vector<std::unique_ptr<Link>> ownedLinks;
    std::unique_ptr<Link> serverIn;
    std::unique_ptr<Link> serverOut;
    std::vector<Path> toServer;
    std::vector<Path> toClient;
    std::vector<bool> remote;
};

/**
 * The backend-side fabric of a sharded cluster: one uplink/downlink
 * pair per backend shard, grouped into racks behind the router tier.
 *
 * Racks matter to fault injection: a ToR-switch outage degrades every
 * link of one rack in the same window (tor_outage in fault::FaultPlan),
 * which is how correlated backend slowness enters the simulation.
 * Backends on a nonzero rack pay the cross-rack aggregation latency on
 * top of the base propagation, mirroring Cluster's client placement.
 */
class ShardFabric
{
  public:
    /** Per-backend placement and link parameters. */
    struct BackendSpec {
        std::uint32_t rack = 0; ///< ToR grouping; rack 0 holds the router.
        double linkGbps = 10.0;
    };

    ShardFabric(sim::Simulation &sim,
                const std::vector<BackendSpec> &backends);

    ShardFabric(const ShardFabric &) = delete;
    ShardFabric &operator=(const ShardFabric &) = delete;

    std::size_t backendCount() const { return forward.size(); }

    /** Path from the router tier to backend @p i. */
    const Path &toBackend(std::size_t i) const;

    /** Path from backend @p i back to the router tier. */
    const Path &fromBackend(std::size_t i) const;

    /** Rack housing backend @p i. */
    std::uint32_t rackOf(std::size_t i) const;

    /** Every fabric link, for fault-injector name targeting. */
    std::vector<Link *> allLinks();

    /** Both links of every backend on @p rack (a ToR blast radius). */
    std::vector<Link *> rackLinks(std::uint32_t rack);

    /** Both links of backend @p i (a per-backend NIC fault target). */
    std::vector<Link *> backendLinks(std::size_t i);

  private:
    std::vector<std::unique_ptr<Link>> ownedLinks;
    std::vector<Path> forward;
    std::vector<Path> reverse;
    std::vector<std::uint32_t> racks;
};

} // namespace net
} // namespace treadmill

#endif // TREADMILL_NET_TOPOLOGY_H_
