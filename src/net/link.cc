#include "net/link.h"

#include <algorithm>
#include <utility>

#include "util/error.h"

namespace treadmill {
namespace net {

Link::Link(sim::Simulation &sim_, std::string name, double gbps,
           SimDuration propagation_)
    : sim(sim_), linkName(std::move(name)),
      bytesPerNs(gbps / 8.0), propagation(propagation_)
{
    if (!(gbps > 0.0))
        throw ConfigError("link bandwidth must be positive");
}

SimDuration
Link::transmitTime(std::uint32_t bytes) const
{
    return static_cast<SimDuration>(
        std::max(1.0, static_cast<double>(bytes) / bytesPerNs));
}

void
Link::send(const Packet &packet, DeliveryFn onDelivered)
{
    ++totalPackets;
    totalBytes += packet.bytes;

    const SimTime now = sim.now();
    const SimDuration serialize = transmitTime(packet.bytes);
    const SimTime start = std::max(now, transmitterFreeAt);
    transmitterFreeAt = start + serialize;
    busyTime += serialize;

    const SimTime deliverAt = transmitterFreeAt + propagation;
    Packet copy = packet;
    sim.scheduleAt(deliverAt,
                   [cb = std::move(onDelivered), copy] { cb(copy); });
}

double
Link::utilization() const
{
    const SimTime elapsed = sim.now();
    if (elapsed == 0)
        return 0.0;
    return static_cast<double>(std::min<SimDuration>(busyTime, elapsed)) /
           static_cast<double>(elapsed);
}

} // namespace net
} // namespace treadmill
