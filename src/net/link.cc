#include "net/link.h"

#include <algorithm>
#include <utility>

#include "util/error.h"
#include "util/logging.h"

namespace treadmill {
namespace net {

Link::Link(sim::Simulation &sim_, std::string name, double gbps,
           SimDuration propagation_)
    : sim(sim_), linkName(std::move(name)),
      bytesPerNs(gbps / 8.0), propagation(propagation_),
      packetsCounter(
          sim.metrics().counter("net." + linkName + ".packets")),
      bytesCounter(sim.metrics().counter("net." + linkName + ".bytes")),
      droppedCounter(
          sim.metrics().counter("net." + linkName + ".dropped")),
      queueWaitHist(
          sim.metrics().histogram("net." + linkName + ".queue_wait_us")),
      inFlightGauge(
          sim.metrics().gauge("net." + linkName + ".in_flight")),
      utilizationGauge(
          sim.metrics().gauge("net." + linkName + ".utilization"))
{
    if (!(gbps > 0.0))
        throw ConfigError("link bandwidth must be positive");
}

// tmlint:hot-path-begin -- send() runs once per packet; the pooled
// pending-delivery slot keeps event capture at 16 bytes (PR 4).
SimDuration
Link::transmitTime(std::uint32_t bytes) const
{
    // Degraded bandwidth stretches serialization proportionally.
    const double effectiveBytesPerNs =
        faults ? bytesPerNs * faults->bandwidthFactor : bytesPerNs;
    return static_cast<SimDuration>(std::max(
        1.0, static_cast<double>(bytes) / effectiveBytesPerNs));
}

bool
Link::send(const Packet &packet, DeliveryFn onDelivered)
{
    if (faults && faults->lossProbability > 0.0 &&
        faults->lossRng.nextDouble() < faults->lossProbability) {
        // The packet vanishes on the wire: it never occupies the
        // transmitter and its delivery callback is simply destroyed.
        ++faults->dropped;
        droppedCounter.add();
        return false;
    }

    ++totalPackets;
    totalBytes += packet.bytes;
    packetsCounter.add();
    bytesCounter.add(packet.bytes);

    const SimTime now = sim.now();
    const SimDuration serialize = transmitTime(packet.bytes);
    const SimTime start = std::max(now, transmitterFreeAt);
    transmitterFreeAt = start + serialize;
    busyTime += serialize;

    // Time this packet waits behind earlier packets at the transmitter:
    // the link-queueing component of the paper's "network latency".
    queueWaitHist.record(toMicros(start - now));
    ++inFlightCount;
    inFlightGauge.set(static_cast<double>(inFlightCount));
    utilizationGauge.set(utilization());

    const SimDuration effectivePropagation =
        faults ? propagation + faults->extraPropagation : propagation;
    const SimTime deliverAt = transmitterFreeAt + effectivePropagation;
    sim.countEvent("net.delivery");
    // Park the packet and its callback in the pool; the event then
    // captures 16 bytes and scheduling allocates nothing.
    const std::uint32_t slot =
        pendingPool.acquire(packet, std::move(onDelivered));
    sim.scheduleAt(deliverAt, [this, slot] {
        PendingDelivery &pd = pendingPool.get(slot);
        const Packet delivered = pd.packet;
        DeliveryFn cb = std::move(pd.deliver);
        pendingPool.release(slot);
        --inFlightCount;
        inFlightGauge.set(static_cast<double>(inFlightCount));
        cb(delivered);
    });
    return true;
}
// tmlint:hot-path-end

void
Link::armFaults(const Rng &lossRng)
{
    if (!faults) {
        faults = std::make_unique<FaultState>();
        faults->lossRng = lossRng;
    }
}

void
Link::setLossProbability(double p)
{
    TM_ASSERT(faults != nullptr, "fault hooks not armed");
    faults->lossProbability = p;
}

void
Link::setBandwidthFactor(double factor)
{
    TM_ASSERT(faults != nullptr, "fault hooks not armed");
    faults->bandwidthFactor = factor;
}

void
Link::setExtraPropagation(SimDuration extra)
{
    TM_ASSERT(faults != nullptr, "fault hooks not armed");
    faults->extraPropagation = extra;
}

std::uint64_t
Link::packetsDropped() const
{
    return faults ? faults->dropped : 0;
}

double
Link::utilization() const
{
    const SimTime elapsed = sim.now();
    if (elapsed == 0)
        return 0.0;
    return static_cast<double>(std::min<SimDuration>(busyTime, elapsed)) /
           static_cast<double>(elapsed);
}

} // namespace net
} // namespace treadmill
