#include "net/capture.h"

namespace treadmill {
namespace net {

void
PacketCapture::onRequest(const Packet &packet, SimTime when)
{
    ++requests;
    pending.insertOrAssign(packet.seqId, when);
}

void
PacketCapture::onResponse(const Packet &packet, SimTime when)
{
    const SimTime *sent = pending.find(packet.seqId);
    if (sent == nullptr) {
        ++unmatched;
        return;
    }
    matched.push_back(toMicros(when - *sent));
    pending.erase(packet.seqId);
}

void
PacketCapture::reset()
{
    pending.clear();
    matched.clear();
    requests = 0;
    unmatched = 0;
}

} // namespace net
} // namespace treadmill
