#include "net/capture.h"

namespace treadmill {
namespace net {

void
PacketCapture::onRequest(const Packet &packet, SimTime when)
{
    ++requests;
    pending[packet.seqId] = when;
}

void
PacketCapture::onResponse(const Packet &packet, SimTime when)
{
    const auto it = pending.find(packet.seqId);
    if (it == pending.end()) {
        ++unmatched;
        return;
    }
    matched.push_back(toMicros(when - it->second));
    pending.erase(it);
}

void
PacketCapture::reset()
{
    pending.clear();
    matched.clear();
    requests = 0;
    unmatched = 0;
}

} // namespace net
} // namespace treadmill
