/**
 * @file
 * Network packet representation.
 *
 * Each request and each response travels as one packet. Packets carry a
 * sequence id so the tcpdump-equivalent capture (capture.h) can match a
 * response to its request exactly the way the paper matches TCP sequence
 * ids on the NIC.
 */

#ifndef TREADMILL_NET_PACKET_H_
#define TREADMILL_NET_PACKET_H_

#include <cstdint>

#include "util/types.h"

namespace treadmill {
namespace net {

/** Direction of a packet relative to the server under test. */
enum class PacketKind { Request, Response };

/** One packet on the wire. */
struct Packet {
    std::uint64_t seqId = 0;        ///< Matches request to response.
    std::uint64_t connectionId = 0; ///< Flow identity (drives RSS hash).
    std::uint32_t bytes = 0;        ///< Wire size incl. headers.
    PacketKind kind = PacketKind::Request;
};

} // namespace net
} // namespace treadmill

#endif // TREADMILL_NET_PACKET_H_
