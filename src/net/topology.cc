#include "net/topology.h"

#include "util/error.h"
#include "util/logging.h"
#include "util/strings.h"

namespace treadmill {
namespace net {

void
Path::addLink(Link *link)
{
    TM_ASSERT(link != nullptr, "null link in path");
    links.push_back(link);
}

void
Path::send(sim::Simulation &sim, const Packet &packet,
           DeliveryFn onDelivered) const
{
    TM_ASSERT(!links.empty(), "sending on an empty path");
    const std::uint32_t transit =
        transits.acquire(&sim, packet, std::size_t{0},
                         std::move(onDelivered));
    sendHop(transit);
}

void
Path::sendHop(std::uint32_t transit) const
{
    Transit &tr = transits.get(transit);
    const bool accepted = links[tr.hop]->send(
        tr.packet, [this, transit](const Packet &p) {
            Transit &hop = transits.get(transit);
            if (hop.hop + 1 == links.size()) {
                DeliveryFn cb = std::move(hop.deliver);
                transits.release(transit);
                cb(p);
                return;
            }
            // Switch forwarding latency between consecutive links.
            ++hop.hop;
            hop.sim->schedule(kSwitchHopLatency,
                             [this, transit] { sendHop(transit); });
        });
    if (!accepted) {
        // Injected loss swallowed the packet mid-path: drop the
        // transit (and the captured final callback) immediately so
        // lossy runs do not accumulate dead per-packet state.
        transits.release(transit);
    }
}

Cluster::Cluster(sim::Simulation &sim, double serverLinkGbps,
                 const std::vector<ClientSpec> &clients)
{
    if (clients.empty())
        throw ConfigError("cluster needs at least one client");

    serverIn = std::make_unique<Link>(sim, "server-ingress",
                                      serverLinkGbps, microseconds(1));
    serverOut = std::make_unique<Link>(sim, "server-egress",
                                       serverLinkGbps, microseconds(1));

    toServer.resize(clients.size());
    toClient.resize(clients.size());
    remote.resize(clients.size());

    for (std::size_t i = 0; i < clients.size(); ++i) {
        const ClientSpec &spec = clients[i];
        remote[i] = spec.remoteRack;
        const SimDuration extra =
            spec.remoteRack ? kCrossRackExtraPropagation : SimDuration{0};

        auto up = std::make_unique<Link>(
            sim, strprintf("client%zu-uplink", i), spec.uplinkGbps,
            microseconds(1) + extra);
        auto down = std::make_unique<Link>(
            sim, strprintf("client%zu-downlink", i), spec.downlinkGbps,
            microseconds(1) + extra);

        toServer[i].addLink(up.get());
        toServer[i].addLink(serverIn.get());
        toClient[i].addLink(serverOut.get());
        toClient[i].addLink(down.get());

        ownedLinks.push_back(std::move(up));
        ownedLinks.push_back(std::move(down));
    }
}

std::vector<Link *>
Cluster::allLinks()
{
    std::vector<Link *> links;
    links.reserve(ownedLinks.size() + 2);
    for (auto &link : ownedLinks)
        links.push_back(link.get());
    links.push_back(serverIn.get());
    links.push_back(serverOut.get());
    return links;
}

const Path &
Cluster::clientToServer(std::size_t i) const
{
    TM_ASSERT(i < toServer.size(), "client index out of range");
    return toServer[i];
}

const Path &
Cluster::serverToClient(std::size_t i) const
{
    TM_ASSERT(i < toClient.size(), "client index out of range");
    return toClient[i];
}

ShardFabric::ShardFabric(sim::Simulation &sim,
                         const std::vector<BackendSpec> &backends)
{
    if (backends.empty())
        throw ConfigError("shard fabric needs at least one backend");

    forward.resize(backends.size());
    reverse.resize(backends.size());
    racks.resize(backends.size());

    for (std::size_t i = 0; i < backends.size(); ++i) {
        const BackendSpec &spec = backends[i];
        racks[i] = spec.rack;
        // The router tier sits on rack 0; backends elsewhere pay the
        // aggregation-layer hop both ways.
        const SimDuration extra = spec.rack != 0
                                      ? kCrossRackExtraPropagation
                                      : SimDuration{0};

        auto up = std::make_unique<Link>(
            sim, strprintf("rack%u-backend%zu-uplink", spec.rack, i),
            spec.linkGbps, microseconds(1) + extra);
        auto down = std::make_unique<Link>(
            sim, strprintf("rack%u-backend%zu-downlink", spec.rack, i),
            spec.linkGbps, microseconds(1) + extra);

        forward[i].addLink(up.get());
        reverse[i].addLink(down.get());

        ownedLinks.push_back(std::move(up));
        ownedLinks.push_back(std::move(down));
    }
}

const Path &
ShardFabric::toBackend(std::size_t i) const
{
    TM_ASSERT(i < forward.size(), "backend index out of range");
    return forward[i];
}

const Path &
ShardFabric::fromBackend(std::size_t i) const
{
    TM_ASSERT(i < reverse.size(), "backend index out of range");
    return reverse[i];
}

std::uint32_t
ShardFabric::rackOf(std::size_t i) const
{
    TM_ASSERT(i < racks.size(), "backend index out of range");
    return racks[i];
}

std::vector<Link *>
ShardFabric::allLinks()
{
    std::vector<Link *> links;
    links.reserve(ownedLinks.size());
    for (auto &link : ownedLinks)
        links.push_back(link.get());
    return links;
}

std::vector<Link *>
ShardFabric::rackLinks(std::uint32_t rack)
{
    std::vector<Link *> links;
    for (std::size_t i = 0; i < racks.size(); ++i) {
        if (racks[i] == rack) {
            links.push_back(ownedLinks[2 * i].get());
            links.push_back(ownedLinks[2 * i + 1].get());
        }
    }
    return links;
}

std::vector<Link *>
ShardFabric::backendLinks(std::size_t i)
{
    TM_ASSERT(i < racks.size(), "backend index out of range");
    return {ownedLinks[2 * i].get(), ownedLinks[2 * i + 1].get()};
}

} // namespace net
} // namespace treadmill
