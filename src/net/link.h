/**
 * @file
 * A network link with bandwidth, propagation delay, and FIFO queueing.
 *
 * Links are the source of the paper's "network latency" component
 * (Fig 3): when a link's offered load approaches its bandwidth, packets
 * queue behind each other and the measured latency inflates.
 */

#ifndef TREADMILL_NET_LINK_H_
#define TREADMILL_NET_LINK_H_

#include <cstdint>
#include <memory>
#include <string>

#include "net/packet.h"
#include "obs/metrics.h"
#include "sim/simulation.h"
#include "util/inline_function.h"
#include "util/pool.h"
#include "util/rng.h"
#include "util/types.h"

namespace treadmill {
namespace net {

/**
 * Callback invoked when a packet finishes crossing a link.
 *
 * Small-buffer optimized: the request/response delivery closures on
 * the hot path capture at most a pointer and a pooled request handle,
 * so handing a packet to a link allocates nothing.
 */
using DeliveryFn = util::InlineFunction<void(const Packet &), 48>;

/**
 * A point-to-point link modeled as a deterministic single server:
 * serialization time = bytes / bandwidth, plus propagation delay.
 * Packets that arrive while the transmitter is busy queue FIFO.
 */
class Link
{
  public:
    /**
     * @param sim Owning simulation.
     * @param name Diagnostic name ("client0-uplink").
     * @param gbps Bandwidth in gigabits per second.
     * @param propagation One-way propagation delay.
     */
    Link(sim::Simulation &sim, std::string name, double gbps,
         SimDuration propagation);

    Link(const Link &) = delete;
    Link &operator=(const Link &) = delete;

    /**
     * Send @p packet; @p onDelivered fires when it reaches the far end.
     *
     * @return true if the packet was accepted; false if injected loss
     *         dropped it (the callback is destroyed without firing, so
     *         callers holding per-packet state can release it).
     */
    bool send(const Packet &packet, DeliveryFn onDelivered);

    /** Total bytes accepted so far. */
    std::uint64_t bytesSent() const { return totalBytes; }

    /** Total packets accepted so far. */
    std::uint64_t packetsSent() const { return totalPackets; }

    /** Fraction of elapsed time the transmitter has been busy. */
    double utilization() const;

    /** Packets accepted but not yet delivered to the far end. */
    std::size_t inFlight() const { return inFlightCount; }

    const std::string &name() const { return linkName; }

    /** @name Fault-injection hooks
     * A healthy link never allocates fault state, so the only cost of
     * the fault subsystem on an un-faulted run is one null-pointer
     * check per send() -- no extra events, draws, or metric updates.
     * @{
     */
    /**
     * Arm the fault hooks with a private randomness stream for loss
     * draws (derived from the run seed by the injector, so faulted
     * runs stay seed-isolated). Idempotent.
     */
    void armFaults(const Rng &lossRng);

    /** Drop each subsequent packet with probability @p p (armed only). */
    void setLossProbability(double p);

    /** Scale bandwidth by @p factor (< 1 = degraded; armed only). */
    void setBandwidthFactor(double factor);

    /** Add @p extra one-way propagation delay (armed only). */
    void setExtraPropagation(SimDuration extra);

    /** Packets dropped by injected loss so far. */
    std::uint64_t packetsDropped() const;
    /** @} */

  private:
    /** Serialization time for @p bytes at this link's bandwidth. */
    SimDuration transmitTime(std::uint32_t bytes) const;

    /** An accepted packet awaiting its delivery instant. Pooled so
     *  the delivery event captures only (this, slot index): 16 bytes,
     *  well inside the event's inline buffer. */
    struct PendingDelivery {
        Packet packet;
        DeliveryFn deliver;
    };

    /** Mutable fault state, allocated only when faults are armed. */
    struct FaultState {
        Rng lossRng{1};
        double lossProbability = 0.0;
        double bandwidthFactor = 1.0;
        SimDuration extraPropagation = 0;
        std::uint64_t dropped = 0;
    };

    sim::Simulation &sim;
    std::string linkName;
    double bytesPerNs;
    SimDuration propagation;
    SimTime transmitterFreeAt = 0;
    SimDuration busyTime = 0;
    std::uint64_t totalBytes = 0;
    std::uint64_t totalPackets = 0;
    std::size_t inFlightCount = 0;
    util::RawPool<PendingDelivery> pendingPool;
    std::unique_ptr<FaultState> faults;

    /** @name Registry handles (resolved once at construction)
     * @{
     */
    obs::Counter &packetsCounter;
    obs::Counter &bytesCounter;
    obs::Counter &droppedCounter;
    obs::Histogram &queueWaitHist;
    obs::Gauge &inFlightGauge;
    obs::Gauge &utilizationGauge;
    /** @} */
};

} // namespace net
} // namespace treadmill

#endif // TREADMILL_NET_LINK_H_
