#include "server/mcrouter.h"

#include <utility>

#include "util/logging.h"

namespace treadmill {
namespace server {

McrouterServer::McrouterServer(hw::Machine &machine_,
                               const McrouterParams &params_,
                               std::uint64_t seed,
                               const std::string &scope)
    : machine(machine_), params(params_),
      rng(Rng(0x6d63726f75746572ull).substream(seed)),
      jitter(-0.5 * params_.workJitterSigma * params_.workJitterSigma,
             params_.workJitterSigma),
      backendDelay(LogNormal::fromMoments(params_.backendMeanUs,
                                          params_.backendSigmaUs)),
      metrics(machine_.simulation().metrics(), scope)
{
}

void
McrouterServer::receive(RequestPtr request, RespondFn respond)
{
    TM_ASSERT(request->nicArrival != kNoTime,
              "request must be stamped with nicArrival");

    const unsigned irqCore =
        machine.nic().irqCore(request->connectionId);
    const unsigned workerIdx =
        machine.workerOfConnection(request->connectionId);
    const unsigned workerCoreId = machine.workerCore(workerIdx);
    const bool crossSocket =
        machine.spec().socketOf(irqCore) !=
        machine.spec().socketOf(workerCoreId);

    hw::WorkItem irq;
    // Interrupt-storm fault hook: 1.0 (exact identity) when healthy.
    irq.cycles = machine.spec().irqCycles * machine.nic().irqLoadFactor();
    irq.allowTurbo = true;
    irq.done = [this, request = std::move(request),
                respond = std::move(respond), crossSocket](
                   SimTime, SimTime) mutable {
        deserializeOnWorker(std::move(request), std::move(respond),
                            crossSocket);
    };
    machine.submit(irqCore, std::move(irq));
}

void
McrouterServer::deserializeOnWorker(RequestPtr request, RespondFn respond,
                                    bool crossSocket)
{
    const unsigned workerIdx =
        machine.workerOfConnection(request->connectionId);
    const unsigned coreId = machine.workerCore(workerIdx);

    double cycles = params.deserializeCycles +
                    params.cyclesPerValueByte *
                        static_cast<double>(request->valueBytes);
    cycles *= jitter.sample(rng);
    if (params.slowFraction > 0.0 &&
        rng.nextDouble() < params.slowFraction) {
        cycles *= params.slowMultiplier;
    }

    hw::WorkItem work;
    work.cycles = cycles;
    work.fixedStall = static_cast<SimDuration>(
        params.memStallScale *
        static_cast<double>(machine.memoryStall(request->connectionId)));
    if (crossSocket)
        work.fixedStall += machine.spec().crossSocketTransfer;
    work.allowTurbo = true;
    work.done = [this, request = std::move(request),
                 respond = std::move(respond)](SimTime start,
                                               SimTime) mutable {
        request->workerStart = start;
        if (backendPool != nullptr) {
            // Real shard fabric: the pool owns the whole round trip
            // (links, shard service, response links) and hands back
            // the request with hit/responseBytes filled by the shard.
            // No router core is occupied meanwhile, same as the
            // modelled path below.
            backendPool->receive(
                std::move(request),
                [this, respond = std::move(respond)](
                    const RequestPtr &resp) mutable {
                    // The instant the shard's response re-entered the
                    // router tier (span traces split fabric time from
                    // router egress on this stamp).
                    resp->routerReturn = machine.simulation().now();
                    serializeOnWorker(resp, std::move(respond));
                });
            return;
        }
        // Asynchronous backend round trip: no core occupied.
        const double delayUs = backendDelay.sample(rng);
        machine.simulation().schedule(
            microseconds(delayUs),
            [this, request = std::move(request),
             respond = std::move(respond)]() mutable {
                serializeOnWorker(std::move(request),
                                  std::move(respond));
            });
    };
    machine.submit(coreId, std::move(work));
}

void
McrouterServer::serializeOnWorker(RequestPtr request, RespondFn respond)
{
    const unsigned workerIdx =
        machine.workerOfConnection(request->connectionId);
    const unsigned coreId = machine.workerCore(workerIdx);

    hw::WorkItem work;
    work.cycles = params.serializeCycles * jitter.sample(rng);
    work.allowTurbo = true;
    work.done = [this, request = std::move(request),
                 respond = std::move(respond)](SimTime,
                                               SimTime end) mutable {
        request->workerEnd = end;
        if (backendPool == nullptr) {
            // Modelled backend: synthesize the outcome the real shard
            // would have produced.
            request->hit = true;
            request->responseBytes =
                48 + request->valueBytes / 2; // relayed value
        }
        ++servedCount;
        request->nicDeparture = end;
        metrics.onServed(*request, request->nicArrival,
                         request->workerStart, end);
        respond(request);
    };
    machine.submit(coreId, std::move(work));
}

double
McrouterServer::expectedServiceSeconds(double meanValueBytes) const
{
    double cycles = params.deserializeCycles + params.serializeCycles +
                    params.cyclesPerValueByte * meanValueBytes;
    cycles *= 1.0 + params.slowFraction * (params.slowMultiplier - 1.0);
    return machine.expectedComputeSeconds(cycles) +
           params.memStallScale * machine.expectedMemoryStallSeconds();
}

} // namespace server
} // namespace treadmill
