/**
 * @file
 * Server-side fault hook points: a Service decorator that can freeze,
 * crash, and warm-restart the server it wraps.
 *
 * The shim sits between the server NIC and the real service, which is
 * exactly where process-level faults act in a real deployment: a GC or
 * compaction pause freezes the event loop (requests pile up in the
 * socket buffer and drain afterwards), and a crash resets connections
 * (in-flight requests are simply never answered). Requests already
 * handed to the inner service keep their worker-queue positions --
 * faults never reorder work that was accepted before they struck, so
 * faulted runs stay deterministic.
 *
 * The shim is only inserted into the request path when the run's
 * FaultPlan contains server events; a plan-free run calls the real
 * service directly and is bit-identical to a build without it.
 */

#ifndef TREADMILL_SERVER_FAULT_SHIM_H_
#define TREADMILL_SERVER_FAULT_SHIM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "server/request.h"
#include "sim/simulation.h"
#include "util/types.h"

namespace treadmill {
namespace server {

/**
 * Decorates a Service with stall / crash / warm-up fault behaviour,
 * armed by the fault injector through the begin*()/end*() hooks.
 */
class ServiceFaultShim : public Service
{
  public:
    /**
     * @param sim Owning simulation (schedules deferred deliveries).
     * @param inner The real service.
     * @param scope Metric prefix of the wrapped service ("server", or
     *        "backend<i>" for a cluster shard); the shim claims
     *        "<scope>.fault" so two shims can never share counters.
     */
    ServiceFaultShim(sim::Simulation &sim, Service &inner,
                     const std::string &scope = "server");

    ServiceFaultShim(const ServiceFaultShim &) = delete;
    ServiceFaultShim &operator=(const ServiceFaultShim &) = delete;

    /**
     * Deliver @p request through the active fault state: pass through
     * when healthy, defer to the stall end while stalled, drop while
     * crashed, and delay by the decaying warm-up penalty while warming
     * up.
     */
    void receive(RequestPtr request, RespondFn respond) override;

    /** @name Injector hooks
     * @{
     */
    /** Freeze request intake until @p until. */
    void beginStall(SimTime until);

    /**
     * Crash now; restart at @p restartAt. After restart, arriving
     * requests pay an extra delay starting at @p warmupPenalty and
     * decaying linearly to zero over @p warmup.
     */
    void beginCrash(SimTime restartAt, SimDuration warmup,
                    SimDuration warmupPenalty);
    /** @} */

    /** @name Diagnostics
     * @{
     */
    std::uint64_t stalledRequests() const { return stalledCount; }
    std::uint64_t droppedRequests() const { return droppedCount; }
    std::uint64_t warmupRequests() const { return warmupCount; }
    bool stalled() const;
    bool crashed() const;
    /** @} */

  private:
    sim::Simulation &sim;
    Service &inner;

    SimTime stallUntil = 0;   ///< Intake frozen while now < stallUntil.
    SimTime crashedUntil = 0; ///< Down while now < crashedUntil.
    SimTime warmupUntil = 0;
    SimDuration warmupWindow = 0;
    SimDuration warmupMaxPenalty = 0;

    std::uint64_t stalledCount = 0;
    std::uint64_t droppedCount = 0;
    std::uint64_t warmupCount = 0;

    obs::Counter &stalledCounter;
    obs::Counter &droppedCounter;
    obs::Counter &warmupCounter;
};

} // namespace server
} // namespace treadmill

#endif // TREADMILL_SERVER_FAULT_SHIM_H_
