/**
 * @file
 * An in-memory key-value store with LRU eviction.
 *
 * The Memcached model stores and serves real data: GETs return the
 * bytes a previous SET stored, misses are real misses, and memory
 * pressure evicts least-recently-used entries -- so workload configs
 * (key popularity, value sizes, GET/SET mix) behave as they would
 * against memcached itself.
 */

#ifndef TREADMILL_SERVER_KVSTORE_H_
#define TREADMILL_SERVER_KVSTORE_H_

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>

namespace treadmill {
namespace server {

/** Hash-table KV store with size-bounded LRU eviction. */
class KvStore
{
  public:
    /**
     * @param capacityBytes Eviction threshold on stored value bytes
     *        (0 means unbounded).
     */
    explicit KvStore(std::uint64_t capacityBytes = 0);

    KvStore(const KvStore &) = delete;
    KvStore &operator=(const KvStore &) = delete;

    /**
     * Store @p value under @p key, updating LRU order and evicting if
     * over capacity.
     */
    void set(const std::string &key, std::string value);

    /**
     * Look up @p key.
     *
     * @param value Receives the stored bytes on a hit.
     * @return true on hit.
     */
    bool get(const std::string &key, std::string *value);

    /**
     * Look up @p key without copying the value out.
     *
     * Identical side effects to get() -- the hit/miss counters tick
     * and a hit refreshes the entry's LRU position -- so callers that
     * only need the size (the response-building hot path) skip the
     * per-GET value copy. The pointer is valid until the next
     * mutating call.
     *
     * @return The stored value, or nullptr on miss.
     */
    const std::string *find(const std::string &key);

    /** Remove @p key if present; returns true when something was
     *  deleted. */
    bool erase(const std::string &key);

    /** Number of live entries. */
    std::size_t size() const { return table.size(); }

    /** Bytes of stored values. */
    std::uint64_t bytesStored() const { return storedBytes; }

    /** @name Operation counters
     * @{
     */
    std::uint64_t hits() const { return hitCount; }
    std::uint64_t misses() const { return missCount; }
    std::uint64_t sets() const { return setCount; }
    std::uint64_t evictions() const { return evictionCount; }
    /** @} */

  private:
    struct Entry {
        std::string key;
        std::string value;
    };
    using LruList = std::list<Entry>;

    /** Evict LRU entries until under capacity. */
    void enforceCapacity();

    std::uint64_t capacity;
    LruList lru; ///< Front = most recently used.
    std::unordered_map<std::string, LruList::iterator> table;
    std::uint64_t storedBytes = 0;
    std::uint64_t hitCount = 0;
    std::uint64_t missCount = 0;
    std::uint64_t setCount = 0;
    std::uint64_t evictionCount = 0;
};

} // namespace server
} // namespace treadmill

#endif // TREADMILL_SERVER_KVSTORE_H_
