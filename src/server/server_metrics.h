/**
 * @file
 * Shared server-side telemetry: every service model (Memcached,
 * mcrouter, sqlish) publishes the same queue-wait / service-time /
 * hit-rate metrics into its machine's registry, so decomposition
 * reports and dashboards read one schema regardless of workload kind.
 */

#ifndef TREADMILL_SERVER_SERVER_METRICS_H_
#define TREADMILL_SERVER_SERVER_METRICS_H_

#include <string>

#include "obs/metrics.h"
#include "server/request.h"
#include "util/types.h"

namespace treadmill {
namespace server {

/**
 * Registry handles for the common server metrics.
 *
 * @p scope is the dotted metric prefix ("server" for the classic
 * single-server experiment, "backend2" for shard 2 of a cluster). The
 * scope is claimed exclusively at construction: two services landing on
 * the same prefix -- which would silently merge their queue-wait and
 * hit-rate telemetry -- throw ConfigError instead.
 */
class ServerMetrics
{
  public:
    explicit ServerMetrics(obs::MetricsRegistry &registry,
                           const std::string &scope = "server")
        : queueWaitUs(registry.histogram(scope + ".queue_wait_us")),
          serviceUs(registry.histogram(scope + ".service_us")),
          hits(registry.counter(scope + ".hits")),
          misses(registry.counter(scope + ".misses")),
          served(registry.counter(scope + ".served"))
    {
        registry.claimScope(scope);
    }

    /**
     * Record one fully served request.
     *
     * The stamps are passed explicitly rather than read off the
     * request because in a cluster the same Request object crosses
     * both the router and a backend shard, each with its own
     * arrival/start/end instants; reading the shared fields would
     * credit one tier with the other's queueing. @p arrival may be
     * kNoTime for a service fed without NIC stamping (direct harness
     * injection), in which case the queue wait is not recorded.
     */
    void
    onServed(const Request &request, SimTime arrival, SimTime start,
             SimTime end)
    {
        if (arrival != kNoTime)
            queueWaitUs.record(toMicros(start - arrival));
        serviceUs.record(toMicros(end - start));
        (request.hit ? hits : misses).add();
        served.add();
    }

  private:
    obs::Histogram &queueWaitUs; ///< NIC arrival to worker start.
    obs::Histogram &serviceUs;   ///< Worker start to worker end.
    obs::Counter &hits;
    obs::Counter &misses;
    obs::Counter &served;
};

} // namespace server
} // namespace treadmill

#endif // TREADMILL_SERVER_SERVER_METRICS_H_
