#include "server/memcached.h"

#include <cmath>
#include <utility>

#include "util/logging.h"

namespace treadmill {
namespace server {

MemcachedServer::MemcachedServer(hw::Machine &machine_,
                                 const MemcachedParams &params_,
                                 std::uint64_t seed,
                                 const std::string &scope,
                                 bool backendRole_)
    : machine(machine_), params(params_), kv(params_.storeCapacityBytes),
      rng(Rng(0x6d656d63616368ull).substream(seed)),
      jitter(-0.5 * params_.workJitterSigma * params_.workJitterSigma,
             params_.workJitterSigma),
      metrics(machine_.simulation().metrics(), scope),
      backendRole(backendRole_)
{
}

void
MemcachedServer::receive(RequestPtr request, RespondFn respond)
{
    TM_ASSERT(backendRole ? request->backendNicArrival != kNoTime
                          : request->nicArrival != kNoTime,
              "request must be stamped with its NIC arrival");

    const unsigned irqCore =
        machine.nic().irqCore(request->connectionId);
    const unsigned workerIdx =
        machine.workerOfConnection(request->connectionId);
    const unsigned workerCoreId = machine.workerCore(workerIdx);
    const bool crossSocket =
        machine.spec().socketOf(irqCore) !=
        machine.spec().socketOf(workerCoreId);

    // Stage 1: interrupt handling on the RSS-steered core.
    hw::WorkItem irq;
    // An injected interrupt storm multiplies handling cost (1.0 when
    // healthy, which is an exact identity on the cycle count).
    irq.cycles = machine.spec().irqCycles * machine.nic().irqLoadFactor();
    irq.fixedStall = 0;
    irq.allowTurbo = true;
    irq.done = [this, request = std::move(request),
                respond = std::move(respond), crossSocket](
                   SimTime, SimTime) mutable {
        executeOnWorker(std::move(request), std::move(respond),
                        crossSocket);
    };
    machine.submit(irqCore, std::move(irq));
}

void
MemcachedServer::executeOnWorker(RequestPtr request, RespondFn respond,
                                 bool crossSocket)
{
    const unsigned workerIdx =
        machine.workerOfConnection(request->connectionId);
    const unsigned coreId = machine.workerCore(workerIdx);

    double cycles = request->op == OpType::Get ? params.getCycles
                                               : params.setCycles;
    cycles += params.cyclesPerValueByte *
              static_cast<double>(request->valueBytes);
    cycles *= jitter.sample(rng);
    if (params.slowFraction > 0.0 &&
        rng.nextDouble() < params.slowFraction) {
        cycles *= params.slowMultiplier;
    }

    hw::WorkItem work;
    work.cycles = cycles;
    work.fixedStall = machine.memoryStall(request->connectionId);
    if (crossSocket)
        work.fixedStall += machine.spec().crossSocketTransfer;
    work.allowTurbo = true;
    work.done = [this, request = std::move(request),
                 respond = std::move(respond)](SimTime start,
                                               SimTime end) mutable {
        // A backend shard keeps its window in the backend* stamps so
        // the router's workerStart/End on the same Request survive.
        if (backendRole) {
            request->backendWorkerStart = start;
            request->backendWorkerEnd = end;
        } else {
            request->workerStart = start;
            request->workerEnd = end;
        }

        // Perform the real hash-table operation.
        if (request->op == OpType::Set) {
            kv.set(request->key,
                   std::string(request->valueBytes, 'v'));
            request->hit = true;
            request->responseBytes = 48; // STORED + headers
        } else {
            // find() ticks the same counters and refreshes LRU order
            // like get(), without copying the value per GET.
            const std::string *value = kv.find(request->key);
            request->hit = value != nullptr;
            request->responseBytes =
                48 + static_cast<std::uint32_t>(
                         value != nullptr ? value->size() : 0);
        }

        ++servedCount;
        if (backendRole) {
            request->backendNicDeparture = end;
            metrics.onServed(*request, request->backendNicArrival,
                             start, end);
        } else {
            request->nicDeparture = end;
            metrics.onServed(*request, request->nicArrival, start, end);
        }
        respond(request);
    };
    machine.submit(coreId, std::move(work));
}

double
MemcachedServer::expectedServiceSeconds(double meanValueBytes) const
{
    double cycles =
        params.getCycles + params.cyclesPerValueByte * meanValueBytes;
    // The slow-request mechanism inflates the mean multiplicatively.
    cycles *= 1.0 + params.slowFraction * (params.slowMultiplier - 1.0);
    return machine.expectedServiceSeconds(cycles);
}

} // namespace server
} // namespace treadmill
