#include "server/fault_shim.h"

#include <utility>

namespace treadmill {
namespace server {

ServiceFaultShim::ServiceFaultShim(sim::Simulation &sim_, Service &inner_,
                                   const std::string &scope)
    : sim(sim_), inner(inner_),
      stalledCounter(
          sim_.metrics().counter(scope + ".fault.stalled")),
      droppedCounter(
          sim_.metrics().counter(scope + ".fault.dropped")),
      warmupCounter(
          sim_.metrics().counter(scope + ".fault.warmed_up"))
{
    sim_.metrics().claimScope(scope + ".fault");
}

bool
ServiceFaultShim::stalled() const
{
    return sim.now() < stallUntil;
}

bool
ServiceFaultShim::crashed() const
{
    return sim.now() < crashedUntil;
}

void
ServiceFaultShim::receive(RequestPtr request, RespondFn respond)
{
    const SimTime now = sim.now();

    if (now < crashedUntil) {
        // The process is down: the connection resets and the request
        // is never answered. The client's timeout/retry policy is the
        // only recovery path -- exactly as in production.
        ++droppedCount;
        droppedCounter.add();
        return;
    }

    if (now < stallUntil) {
        // Frozen event loop: the request waits in the (unbounded)
        // socket buffer and is delivered when the pause ends. Arrival
        // order is preserved because same-instant events fire in
        // scheduling order.
        ++stalledCount;
        stalledCounter.add();
        sim.countEvent("fault.stall_release");
        sim.scheduleAt(stallUntil, [this, request = std::move(request),
                                    respond = std::move(respond)]() mutable {
            receive(std::move(request), std::move(respond));
        });
        return;
    }

    if (now < warmupUntil && warmupWindow > 0) {
        // Cold caches after restart: an extra delay that decays
        // linearly to zero across the warm-up window.
        const double remaining =
            static_cast<double>(warmupUntil - now) /
            static_cast<double>(warmupWindow);
        const auto penalty = static_cast<SimDuration>(
            static_cast<double>(warmupMaxPenalty) * remaining);
        ++warmupCount;
        warmupCounter.add();
        sim.countEvent("fault.warmup_delay");
        sim.schedule(penalty, [this, request = std::move(request),
                               respond = std::move(respond)]() mutable {
            inner.receive(std::move(request), std::move(respond));
        });
        return;
    }

    inner.receive(std::move(request), std::move(respond));
}

void
ServiceFaultShim::beginStall(SimTime until)
{
    stallUntil = std::max(stallUntil, until);
}

void
ServiceFaultShim::beginCrash(SimTime restartAt, SimDuration warmup,
                             SimDuration warmupPenalty)
{
    crashedUntil = std::max(crashedUntil, restartAt);
    warmupUntil = restartAt + warmup;
    warmupWindow = warmup;
    warmupMaxPenalty = warmupPenalty;
}

} // namespace server
} // namespace treadmill
