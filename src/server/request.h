/**
 * @file
 * Request/response representation shared by clients and servers.
 *
 * A Request carries its own timeline: every component that touches it
 * stamps the simulated clock, so any latency decomposition the paper
 * performs (client-side, network, server residence, Fig 3) falls out
 * of simple timestamp differences.
 */

#ifndef TREADMILL_SERVER_REQUEST_H_
#define TREADMILL_SERVER_REQUEST_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "util/pool.h"
#include "util/types.h"

namespace treadmill {
namespace server {

/** Memcached-protocol operation type. */
enum class OpType { Get, Set };

/** One in-flight request and its accumulated timeline. */
struct Request {
    std::uint64_t seqId = 0;
    std::uint64_t connectionId = 0;
    std::uint64_t clientIndex = 0; ///< Which load-tester instance sent it.

    /** @name Resilience bookkeeping
     * Every wire attempt gets a fresh seqId, but all attempts of one
     * logical request share logicalSeqId and the original intendedSend,
     * so clientLatencyUs() on whichever attempt completes first spans
     * from the instant the open-loop schedule meant to issue the
     * request (paper SII: latency includes everything the client waited
     * through, retries included).
     * @{
     */
    std::uint64_t logicalSeqId = 0; ///< Stable across retries/hedges.
    std::uint32_t attempt = 0;      ///< 0 = first send, 1+ = retries.
    bool hedged = false;            ///< True for hedge (backup) sends.
    /** @} */

    OpType op = OpType::Get;
    std::string key;
    /** Backend shard that served the request (-1 = direct path,
     *  no balancer tier involved). Stamped by the load balancer at
     *  dispatch so attribution can split "backend N got slow" from
     *  "the balancer queued". */
    std::int32_t backendId = -1;
    std::uint32_t valueBytes = 0;   ///< SET payload size.
    std::uint32_t requestBytes = 0; ///< Wire size of the request packet.
    std::uint32_t responseBytes = 0; ///< Wire size of the response.
    bool hit = false;               ///< GET outcome.

    /** @name Timeline (kNoTime until stamped)
     * @{
     */
    SimTime intendedSend = kNoTime; ///< Open-loop schedule instant.
    SimTime clientSend = kNoTime;   ///< Actually left the client.
    SimTime nicArrival = kNoTime;   ///< Reached the server NIC.
    SimTime workerStart = kNoTime;  ///< Began worker processing.
    SimTime workerEnd = kNoTime;    ///< Finished worker processing.
    SimTime nicDeparture = kNoTime; ///< Response left the server NIC.
    SimTime clientNicArrival = kNoTime; ///< Response hit the client NIC.
    SimTime clientReceive = kNoTime; ///< Response callback ran.
    /** @} */

    /** @name Per-attempt resilience stamps
     * triggerAt is the instant the client decided to send *this*
     * attempt: the intendedSend for the scheduled first attempt, the
     * backoff/hedge timer firing for clones. The gap
     * [intendedSend, triggerAt] is the pre-win wait the decomposition
     * must account explicitly (it is retry/hedge policy delay, not
     * client queueing). timeoutAt records when this attempt's timeout
     * fired, kNoTime if it never did.
     * @{
     */
    SimTime triggerAt = kNoTime;
    SimTime timeoutAt = kNoTime;
    /** @} */

    /** @name Cluster-tier hop stamps (kNoTime on the classic path)
     * Stamped along the router -> balancer -> fabric -> backend chain
     * so span traces can split LB queueing, fabric transit, and
     * backend residence out of what used to collapse into one opaque
     * worker interval.
     * @{
     */
    SimTime lbArrival = kNoTime;  ///< Entered the balancer.
    SimTime lbDispatch = kNoTime; ///< Left the balancer queue.
    SimTime backendNicArrival = kNoTime;  ///< Reached the shard NIC.
    SimTime backendWorkerStart = kNoTime; ///< Shard worker began.
    SimTime backendWorkerEnd = kNoTime;   ///< Shard worker finished.
    SimTime backendNicDeparture = kNoTime; ///< Left the shard NIC.
    SimTime routerReturn = kNoTime; ///< Response back at the router.
    /** Healthy-failover hops: down replicas skipped ahead of the one
     *  that got this attempt. */
    std::uint32_t lbFailovers = 0;
    /** The balancer dropped this attempt (every replica down). */
    bool lbDropped = false;
    /** @} */

    /** End-to-end latency as the load tester perceives it, in us. */
    double
    clientLatencyUs() const
    {
        return toMicros(clientReceive - intendedSend);
    }

    /** Server residence (NIC in to NIC out), in us. */
    double
    serverLatencyUs() const
    {
        return toMicros(nicDeparture - nicArrival);
    }
};

using RequestPtr = std::shared_ptr<Request>;

/**
 * Free-list arena for Request objects. make() replaces make_shared on
 * the issue path: the shared_ptr control block and the Request land in
 * one recycled block, so a warmed-up client issues requests without
 * heap allocation. Outstanding RequestPtr handles keep the arena
 * alive, so pool and simulation teardown order does not matter.
 */
using RequestPool = util::Pool<Request>;

/** Callback delivering a completed response. */
using RespondFn = std::function<void(const RequestPtr &)>;

/**
 * Anything that accepts requests at its NIC and eventually responds.
 */
class Service
{
  public:
    virtual ~Service() = default;

    /**
     * Deliver @p request, already stamped with nicArrival. The service
     * invokes @p respond once the response is ready to leave its NIC
     * (nicDeparture stamped).
     */
    virtual void receive(RequestPtr request, RespondFn respond) = 0;
};

} // namespace server
} // namespace treadmill

#endif // TREADMILL_SERVER_REQUEST_H_
