/**
 * @file
 * The Memcached server model.
 *
 * Request path, mirroring a real deployment:
 *   NIC arrival -> RSS-steered interrupt handling on the irq core ->
 *   hand-off to the connection's worker thread (cross-socket transfer
 *   stall if the irq landed on the other socket) -> worker executes
 *   protocol parsing + hash-table operation, paying NUMA memory stalls
 *   on the connection buffer -> response leaves through the NIC.
 *
 * The hash-table operation is performed against a real KvStore, so
 * hits, misses, and response sizes are genuine.
 */

#ifndef TREADMILL_SERVER_MEMCACHED_H_
#define TREADMILL_SERVER_MEMCACHED_H_

#include <cstdint>
#include <string>

#include "hw/machine.h"
#include "server/kvstore.h"
#include "server/request.h"
#include "server/server_metrics.h"
#include "util/random_variates.h"
#include "util/rng.h"

namespace treadmill {
namespace server {

/** Service-cost parameters of the Memcached model. */
struct MemcachedParams {
    double getCycles = 17000.0;   ///< Base worker cycles for a GET.
    double setCycles = 20000.0;   ///< Base worker cycles for a SET.
    double cyclesPerValueByte = 6.0; ///< Marginal cost of payload bytes.
    double workJitterSigma = 0.45; ///< Lognormal sigma on worker cycles.
    /** Occasional slow requests (hash-chain walks, slab maintenance,
     *  epoll hiccups): this fraction of requests costs slowMultiplier
     *  times the normal cycles -- the intrinsic service-time tail. */
    double slowFraction = 0.015;
    double slowMultiplier = 8.0;
    std::uint64_t storeCapacityBytes = 0; ///< 0 = unbounded.
};

/** Simulated Memcached instance bound to a Machine. */
class MemcachedServer : public Service
{
  public:
    /**
     * @param machine Configured hardware to run on.
     * @param params Service-cost parameters.
     * @param seed Stream for per-request work jitter.
     * @param scope Metric-name prefix ("server" for the classic single
     *        server, "backend<i>" for a cluster shard); claimed
     *        exclusively in the machine's registry.
     * @param backendRole True when this instance is a cluster shard
     *        behind a router. A shard records its worker window into
     *        the backendWorkerStart/End + backendNicDeparture stamps so
     *        it never clobbers the router's workerStart/End timeline on
     *        the shared Request (span traces need both tiers).
     */
    MemcachedServer(hw::Machine &machine, const MemcachedParams &params,
                    std::uint64_t seed,
                    const std::string &scope = "server",
                    bool backendRole = false);

    void receive(RequestPtr request, RespondFn respond) override;

    /** The backing store (inspection and pre-population). */
    KvStore &store() { return kv; }

    /** Requests fully served so far. */
    std::uint64_t served() const { return servedCount; }

    /**
     * Expected worker service seconds per request at nominal frequency
     * (for utilization -> request-rate sizing).
     *
     * @param meanValueBytes Mean payload size of the workload.
     */
    double expectedServiceSeconds(double meanValueBytes) const;

  private:
    /** Worker-thread portion of request handling. */
    void executeOnWorker(RequestPtr request, RespondFn respond,
                         bool crossSocket);

    hw::Machine &machine;
    MemcachedParams params;
    KvStore kv;
    Rng rng;
    LogNormal jitter;
    ServerMetrics metrics;
    bool backendRole;
    std::uint64_t servedCount = 0;
};

} // namespace server
} // namespace treadmill

#endif // TREADMILL_SERVER_MEMCACHED_H_
