#include "server/sqlish.h"

#include <utility>

#include "util/logging.h"

namespace treadmill {
namespace server {

SqlishServer::SqlishServer(hw::Machine &machine_,
                           const SqlishParams &params_,
                           std::uint64_t seed,
                           const std::string &scope)
    : machine(machine_), params(params_),
      rng(Rng(0x51a15eedull).substream(seed)),
      jitter(-0.5 * params_.workJitterSigma * params_.workJitterSigma,
             params_.workJitterSigma),
      ioMiss(params_.ioMissProbability),
      metrics(machine_.simulation().metrics(), scope)
{
}

void
SqlishServer::receive(RequestPtr request, RespondFn respond)
{
    TM_ASSERT(request->nicArrival != kNoTime,
              "request must be stamped with nicArrival");

    const unsigned irqCore =
        machine.nic().irqCore(request->connectionId);
    const unsigned workerIdx =
        machine.workerOfConnection(request->connectionId);
    const unsigned workerCoreId = machine.workerCore(workerIdx);

    hw::WorkItem irq;
    // Interrupt-storm fault hook: 1.0 (exact identity) when healthy.
    irq.cycles = machine.spec().irqCycles * machine.nic().irqLoadFactor();
    irq.allowTurbo = true;
    irq.done = [this, request = std::move(request),
                respond = std::move(respond),
                workerCoreId](SimTime, SimTime) mutable {
        hw::WorkItem query;
        query.cycles = params.queryCycles * jitter.sample(rng);
        query.fixedStall =
            machine.memoryStall(request->connectionId);
        if (ioMiss.sample(rng)) {
            query.fixedStall += static_cast<SimDuration>(
                microseconds(params.ioStallUs));
        }
        query.allowTurbo = true;
        query.done = [this, request = std::move(request),
                      respond = std::move(respond)](
                         SimTime start, SimTime end) mutable {
            request->workerStart = start;
            request->workerEnd = end;
            request->hit = true;
            request->responseBytes = 256;
            ++servedCount;
            request->nicDeparture = end;
            metrics.onServed(*request, request->nicArrival, start, end);
            respond(request);
        };
        machine.submit(workerCoreId, std::move(query));
    };
    machine.submit(irqCore, std::move(irq));
}

double
SqlishServer::expectedServiceSeconds() const
{
    return machine.expectedComputeSeconds(params.queryCycles) +
           machine.expectedMemoryStallSeconds() +
           params.ioMissProbability * params.ioStallUs * 1e-6;
}

} // namespace server
} // namespace treadmill
