/**
 * @file
 * A MySQL-like long-service workload model.
 *
 * The paper's S II-C notes that "for workloads with long service time
 * (e.g., complex MySQL queries), clients do not have to issue many
 * requests to saturate the server" -- i.e., the client-side queueing
 * pitfall is specific to microsecond-scale services. This model (a
 * query service with millisecond, heavy-tailed service times) exists
 * to demonstrate that boundary, and doubles as the repository's
 * demonstration of the Treadmill generality claim: integrating a new
 * service is this one small file.
 */

#ifndef TREADMILL_SERVER_SQLISH_H_
#define TREADMILL_SERVER_SQLISH_H_

#include <cstdint>
#include <string>

#include "hw/machine.h"
#include "server/request.h"
#include "server/server_metrics.h"
#include "util/random_variates.h"
#include "util/rng.h"

namespace treadmill {
namespace server {

/** Service-cost parameters of the query-server model. */
struct SqlishParams {
    /** Mean CPU cycles per query (milliseconds of work at nominal). */
    double queryCycles = 2.2e6;
    /** Lognormal sigma: query plans vary wildly. */
    double workJitterSigma = 0.9;
    /** Buffer-pool miss probability: adds an I/O-like stall. */
    double ioMissProbability = 0.08;
    double ioStallUs = 900.0;
};

/** Simulated long-service query server bound to a Machine. */
class SqlishServer : public Service
{
  public:
    SqlishServer(hw::Machine &machine, const SqlishParams &params,
                 std::uint64_t seed,
                 const std::string &scope = "server");

    void receive(RequestPtr request, RespondFn respond) override;

    /** Queries completed so far. */
    std::uint64_t served() const { return servedCount; }

    /** Expected CPU seconds per query at the nominal frequency. */
    double expectedServiceSeconds() const;

  private:
    hw::Machine &machine;
    SqlishParams params;
    Rng rng;
    LogNormal jitter;
    Bernoulli ioMiss;
    ServerMetrics metrics;
    std::uint64_t servedCount = 0;
};

} // namespace server
} // namespace treadmill

#endif // TREADMILL_SERVER_SQLISH_H_
