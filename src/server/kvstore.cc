// tmlint:hot-path -- every server request lands in one of these LRU
// operations; only the sink-parameter copy below may touch strings.
#include "server/kvstore.h"

#include <utility>

namespace treadmill {
namespace server {

KvStore::KvStore(std::uint64_t capacityBytes) : capacity(capacityBytes) {}

void
// tmlint:allow-next-line(hot-path-no-string): sink parameter, moved into the store
KvStore::set(const std::string &key, std::string value)
{
    ++setCount;
    const auto it = table.find(key);
    if (it != table.end()) {
        storedBytes -= it->second->value.size();
        storedBytes += value.size();
        it->second->value = std::move(value);
        lru.splice(lru.begin(), lru, it->second);
    } else {
        storedBytes += value.size();
        lru.push_front(Entry{key, std::move(value)});
        table[key] = lru.begin();
    }
    enforceCapacity();
}

bool
KvStore::get(const std::string &key, std::string *value)
{
    const auto it = table.find(key);
    if (it == table.end()) {
        ++missCount;
        return false;
    }
    ++hitCount;
    lru.splice(lru.begin(), lru, it->second);
    if (value != nullptr)
        *value = it->second->value;
    return true;
}

const std::string *
KvStore::find(const std::string &key)
{
    const auto it = table.find(key);
    if (it == table.end()) {
        ++missCount;
        return nullptr;
    }
    ++hitCount;
    lru.splice(lru.begin(), lru, it->second);
    return &it->second->value;
}

bool
KvStore::erase(const std::string &key)
{
    const auto it = table.find(key);
    if (it == table.end())
        return false;
    storedBytes -= it->second->value.size();
    lru.erase(it->second);
    table.erase(it);
    return true;
}

void
KvStore::enforceCapacity()
{
    if (capacity == 0)
        return;
    while (storedBytes > capacity && !lru.empty()) {
        const Entry &victim = lru.back();
        storedBytes -= victim.value.size();
        table.erase(victim.key);
        lru.pop_back();
        ++evictionCount;
    }
}

} // namespace server
} // namespace treadmill
