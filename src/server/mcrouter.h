/**
 * @file
 * The mcrouter model: a memcached-protocol router.
 *
 * mcrouter spends most of its time deserializing requests from network
 * packets -- CPU-bound work that frequency scaling accelerates (paper
 * Finding 8) -- then forwards each request to a backend pool and
 * relays the response. The backend round trip is asynchronous: it
 * occupies no router core, only time.
 */

#ifndef TREADMILL_SERVER_MCROUTER_H_
#define TREADMILL_SERVER_MCROUTER_H_

#include <cstdint>
#include <string>

#include "hw/machine.h"
#include "server/request.h"
#include "server/server_metrics.h"
#include "util/random_variates.h"
#include "util/rng.h"

namespace treadmill {
namespace server {

/** Service-cost parameters of the mcrouter model. */
struct McrouterParams {
    double deserializeCycles = 20000.0; ///< Request parsing + routing.
    double serializeCycles = 7000.0;    ///< Response relay cost.
    double cyclesPerValueByte = 2.0;    ///< Marginal payload cost.
    double workJitterSigma = 0.35;      ///< Lognormal sigma on cycles.
    /** Occasional slow requests (route-map misses, reconnects). */
    double slowFraction = 0.008;
    double slowMultiplier = 3.0;
    /** mcrouter touches connection buffers far less than memcached;
     *  its NUMA stall is this fraction of the machine's full stall. */
    double memStallScale = 0.35;
    double backendMeanUs = 20.0;  ///< Mean backend round trip.
    double backendSigmaUs = 7.0;  ///< Backend round-trip spread.
};

/** Simulated mcrouter instance bound to a Machine. */
class McrouterServer : public Service
{
  public:
    McrouterServer(hw::Machine &machine, const McrouterParams &params,
                   std::uint64_t seed,
                   const std::string &scope = "server");

    void receive(RequestPtr request, RespondFn respond) override;

    /**
     * Route through @p pool (typically a lb::LoadBalancer fronting the
     * shard fabric) instead of the modelled lognormal backend delay.
     * The pool owns the entire backend round trip -- links, shard
     * service, and response links -- and the router core stays free
     * while it runs, exactly like the modelled path.
     */
    void setBackendPool(Service *pool) { backendPool = pool; }

    /** Requests fully routed so far. */
    std::uint64_t served() const { return servedCount; }

    /** Expected router CPU seconds per request at nominal frequency. */
    double expectedServiceSeconds(double meanValueBytes) const;

  private:
    /** Stage 2: parse + route on the proxy thread. */
    void deserializeOnWorker(RequestPtr request, RespondFn respond,
                             bool crossSocket);

    /** Stage 3: backend responded; serialize the reply. */
    void serializeOnWorker(RequestPtr request, RespondFn respond);

    hw::Machine &machine;
    McrouterParams params;
    Rng rng;
    LogNormal jitter;
    LogNormal backendDelay;
    ServerMetrics metrics;
    Service *backendPool = nullptr; ///< Null: modelled backend delay.
    std::uint64_t servedCount = 0;
};

} // namespace server
} // namespace treadmill

#endif // TREADMILL_SERVER_MCROUTER_H_
