/**
 * @file
 * The fault injector: turns a declarative FaultPlan into scheduled
 * apply/revert events against the run's hook points.
 *
 * The injector owns no fault behaviour itself -- links drop and delay
 * packets, the server shim stalls and crashes, the NIC scales its
 * interrupt cost. The injector's job is purely temporal: expand each
 * FaultEvent's repeat schedule into concrete windows, schedule the
 * apply and revert instants on the simulation's EventQueue, and record
 * every window as a TraceAnnotation so exported traces show exactly
 * when each fault was active.
 *
 * Determinism: all apply/revert events are scheduled up front during
 * arm(), before the run starts, so their EventQueue insertion order --
 * and therefore the same-instant tie-break order -- is a pure function
 * of the plan. Loss randomness is a per-link Rng derived from the run
 * seed and the link's name, never from shared global state, so faulted
 * runs remain bit-exact under any exec::Parallelism.
 */

#ifndef TREADMILL_FAULT_INJECTOR_H_
#define TREADMILL_FAULT_INJECTOR_H_

#include <cstdint>
#include <map>
#include <vector>

#include "fault/plan.h"
#include "hw/nic.h"
#include "net/link.h"
#include "obs/trace.h"
#include "server/fault_shim.h"
#include "sim/simulation.h"
#include "util/types.h"

namespace treadmill {
namespace fault {

/** Schedules a FaultPlan's windows against attached hook points. */
class FaultInjector
{
  public:
    /**
     * @param sim Owning simulation (all windows schedule here).
     * @param plan The validated fault schedule (copied).
     * @param runSeed Run identity; seeds per-link loss streams.
     */
    FaultInjector(sim::Simulation &sim, FaultPlan plan,
                  std::uint64_t runSeed);

    FaultInjector(const FaultInjector &) = delete;
    FaultInjector &operator=(const FaultInjector &) = delete;

    /** @name Hook-point attachment (before arm())
     * @{
     */
    /** Attach the cluster's links for LinkLoss/LinkDegrade targeting. */
    void attachLinks(const std::vector<net::Link *> &links);

    /** Attach the server shim for ServerStall/ServerCrash events. */
    void attachShim(server::ServiceFaultShim &shim);

    /** Attach the server NIC for NicInterruptStorm events. */
    void attachNic(hw::Nic &nic);

    /** Attach backend @p backend's shim: the hook for server faults
     *  whose event names that backend id. */
    void attachBackendShim(std::uint32_t backend,
                           server::ServiceFaultShim &shim);

    /** Attach backend @p backend's machine NIC for per-backend
     *  nic_storm events. */
    void attachBackendNic(std::uint32_t backend, hw::Nic &nic);

    /**
     * Attach rack @p rack's link set: the TorOutage blast radius.
     * The links must also appear in an attachLinks() call (that is
     * where their loss streams are armed).
     */
    void attachRackLinks(std::uint32_t rack,
                         const std::vector<net::Link *> &links);
    /** @} */

    /**
     * Expand the plan into concrete windows and schedule every apply
     * and revert instant. Call once, after attachment and before the
     * simulation runs. Windows naming a hook point that was never
     * attached throw ConfigError (a silently ignored fault would
     * invalidate the experiment's factor levels).
     */
    void arm();

    /** Concrete windows, one annotation per applied window. */
    const std::vector<obs::TraceAnnotation> &annotations() const
    {
        return windows;
    }

    /** Windows whose apply instant has fired so far. */
    std::uint64_t windowsApplied() const { return appliedCount; }

  private:
    /** Links whose name contains @p target (all links when empty). */
    std::vector<net::Link *> matchLinks(const std::string &target) const;

    /** Schedule one concrete window of @p ev at [start, start+dur). */
    void scheduleWindow(const FaultEvent &ev, SimTime start);

    sim::Simulation &sim;
    FaultPlan plan;
    std::uint64_t seed;

    std::vector<net::Link *> linkHooks;
    server::ServiceFaultShim *shim = nullptr;
    hw::Nic *nic = nullptr;
    std::map<std::uint32_t, server::ServiceFaultShim *> backendShims;
    std::map<std::uint32_t, hw::Nic *> backendNics;
    std::map<std::uint32_t, std::vector<net::Link *>> rackLinkHooks;

    std::vector<obs::TraceAnnotation> windows;
    std::uint64_t appliedCount = 0;
    obs::Counter &appliedCounter;
};

} // namespace fault
} // namespace treadmill

#endif // TREADMILL_FAULT_INJECTOR_H_
