#include "fault/plan.h"

#include <algorithm>
#include <map>
#include <tuple>

#include "util/error.h"
#include "util/strings.h"

namespace treadmill {
namespace fault {

namespace {

const std::vector<std::pair<FaultKind, std::string>> &
kindNames()
{
    static const std::vector<std::pair<FaultKind, std::string>> names{
        {FaultKind::LinkLoss, "link_loss"},
        {FaultKind::LinkDegrade, "link_degrade"},
        {FaultKind::ServerStall, "server_stall"},
        {FaultKind::ServerCrash, "server_crash"},
        {FaultKind::NicInterruptStorm, "nic_storm"},
        {FaultKind::TorOutage, "tor_outage"},
    };
    return names;
}

/** Milliseconds (JSON) -> integer nanoseconds (SimTime). */
SimDuration
fromMs(double ms)
{
    if (ms < 0.0)
        throw ConfigError("fault times must be non-negative");
    return milliseconds(ms);
}

double
toMs(SimDuration d)
{
    return static_cast<double>(d) / 1e6;
}

} // namespace

const std::string &
faultKindName(FaultKind kind)
{
    for (const auto &entry : kindNames()) {
        if (entry.first == kind)
            return entry.second;
    }
    throw ConfigError("unknown fault kind");
}

FaultKind
faultKindFromName(const std::string &name)
{
    for (const auto &entry : kindNames()) {
        if (entry.second == name)
            return entry.first;
    }
    throw ConfigError(strprintf("unknown fault kind \"%s\"",
                                name.c_str()));
}

FaultPlan
FaultPlan::fromJson(const json::Value &doc)
{
    FaultPlan plan;
    if (!doc.contains("events")) {
        plan.validate();
        return plan;
    }
    for (const json::Value &entry : doc.at("events").asArray()) {
        FaultEvent ev;
        ev.kind = faultKindFromName(entry.at("kind").asString());
        ev.start = fromMs(entry.numberOr("start_ms", 0.0));
        ev.duration = fromMs(entry.numberOr("duration_ms", 0.0));
        ev.target = entry.stringOr("target", "");
        ev.backend = static_cast<int>(entry.intOr("backend", -1));
        ev.rack = static_cast<std::uint32_t>(entry.intOr("rack", 0));
        ev.period = fromMs(entry.numberOr("period_ms", 0.0));
        ev.repeatCount = static_cast<std::uint32_t>(
            entry.intOr("repeat", 1));
        ev.lossProbability = entry.numberOr("loss_probability", 0.0);
        ev.bandwidthFactor = entry.numberOr("bandwidth_factor", 1.0);
        ev.extraLatency = static_cast<SimDuration>(
            microseconds(entry.numberOr("extra_latency_us", 0.0)));
        ev.warmup = fromMs(entry.numberOr("warmup_ms", 0.0));
        ev.warmupPenalty = static_cast<SimDuration>(
            microseconds(entry.numberOr("warmup_penalty_us", 0.0)));
        ev.irqCostFactor = entry.numberOr("irq_cost_factor", 1.0);
        plan.events.push_back(std::move(ev));
    }
    plan.validate();
    return plan;
}

json::Value
FaultPlan::toJson() const
{
    json::Array events_;
    for (const FaultEvent &ev : events) {
        json::Object entry;
        entry["kind"] = json::Value(faultKindName(ev.kind));
        entry["start_ms"] = json::Value(toMs(ev.start));
        entry["duration_ms"] = json::Value(toMs(ev.duration));
        if (!ev.target.empty())
            entry["target"] = json::Value(ev.target);
        if (ev.backend >= 0)
            entry["backend"] =
                json::Value(static_cast<std::int64_t>(ev.backend));
        if (ev.repeatCount > 1) {
            entry["period_ms"] = json::Value(toMs(ev.period));
            entry["repeat"] = json::Value(
                static_cast<std::int64_t>(ev.repeatCount));
        }
        switch (ev.kind) {
          case FaultKind::LinkLoss:
            entry["loss_probability"] = json::Value(ev.lossProbability);
            break;
          case FaultKind::LinkDegrade:
            entry["bandwidth_factor"] = json::Value(ev.bandwidthFactor);
            entry["extra_latency_us"] =
                json::Value(toMicros(ev.extraLatency));
            break;
          case FaultKind::ServerStall:
            break;
          case FaultKind::ServerCrash:
            entry["warmup_ms"] = json::Value(toMs(ev.warmup));
            entry["warmup_penalty_us"] =
                json::Value(toMicros(ev.warmupPenalty));
            break;
          case FaultKind::NicInterruptStorm:
            entry["irq_cost_factor"] = json::Value(ev.irqCostFactor);
            break;
          case FaultKind::TorOutage:
            entry["rack"] =
                json::Value(static_cast<std::int64_t>(ev.rack));
            entry["bandwidth_factor"] = json::Value(ev.bandwidthFactor);
            entry["extra_latency_us"] =
                json::Value(toMicros(ev.extraLatency));
            if (ev.lossProbability > 0.0)
                entry["loss_probability"] =
                    json::Value(ev.lossProbability);
            break;
        }
        events_.push_back(json::Value(std::move(entry)));
    }
    json::Object doc;
    doc["events"] = json::Value(std::move(events_));
    return json::Value(std::move(doc));
}

void
FaultPlan::validate() const
{
    for (const FaultEvent &ev : events) {
        const std::string &kind = faultKindName(ev.kind);
        if (ev.duration == 0)
            throw ConfigError(kind + " fault needs a positive duration");
        if (ev.repeatCount == 0)
            throw ConfigError(kind + " fault repeat must be >= 1");
        if (ev.repeatCount > 1 && ev.period < ev.duration)
            throw ConfigError(
                kind + " fault period must cover its duration");
        if (ev.backend < -1)
            throw ConfigError(kind + " fault backend must be >= -1");
        if (ev.backend >= 0 && ev.kind != FaultKind::ServerStall &&
            ev.kind != FaultKind::ServerCrash &&
            ev.kind != FaultKind::NicInterruptStorm)
            throw ConfigError(
                kind + " fault does not take a backend target");
        switch (ev.kind) {
          case FaultKind::LinkLoss:
            if (ev.lossProbability < 0.0 || ev.lossProbability > 1.0)
                throw ConfigError(
                    "loss_probability must lie in [0, 1]");
            break;
          case FaultKind::LinkDegrade:
            if (!(ev.bandwidthFactor > 0.0))
                throw ConfigError("bandwidth_factor must be positive");
            break;
          case FaultKind::ServerStall:
            break;
          case FaultKind::ServerCrash:
            if (ev.warmup > 0 && ev.warmupPenalty == 0)
                throw ConfigError(
                    "server_crash warm-up needs a warmup_penalty_us");
            break;
          case FaultKind::NicInterruptStorm:
            if (!(ev.irqCostFactor >= 1.0))
                throw ConfigError("irq_cost_factor must be >= 1");
            break;
          case FaultKind::TorOutage:
            if (!(ev.bandwidthFactor > 0.0))
                throw ConfigError("bandwidth_factor must be positive");
            if (ev.lossProbability < 0.0 || ev.lossProbability > 1.0)
                throw ConfigError(
                    "loss_probability must lie in [0, 1]");
            break;
        }
    }

    // Overlapping windows of the same kind on the same target would
    // make the revert order ambiguous: reject them. The same kind on
    // two different backends (or two different racks) never interferes,
    // so the key includes the backend/rack dimension.
    std::map<std::tuple<int, std::string, int>,
             std::vector<std::pair<SimTime, SimTime>>>
        windows;
    for (const FaultEvent &ev : events) {
        const int shard = ev.kind == FaultKind::TorOutage
                              ? static_cast<int>(ev.rack)
                              : ev.backend;
        auto &list =
            windows[{static_cast<int>(ev.kind), ev.target, shard}];
        for (std::uint32_t k = 0; k < ev.repeatCount; ++k) {
            const SimTime start = ev.start + k * ev.period;
            list.emplace_back(start, start + ev.duration);
        }
    }
    for (auto &entry : windows) {
        auto &list = entry.second;
        std::sort(list.begin(), list.end());
        for (std::size_t i = 1; i < list.size(); ++i) {
            if (list[i].first < list[i - 1].second) {
                throw ConfigError(strprintf(
                    "overlapping %s fault windows at %.3f ms",
                    faultKindName(static_cast<FaultKind>(
                                      std::get<0>(entry.first)))
                        .c_str(),
                    static_cast<double>(list[i].first) / 1e6));
            }
        }
    }
}

} // namespace fault
} // namespace treadmill
