#include "fault/injector.h"

#include <utility>

#include "util/error.h"
#include "util/strings.h"

namespace treadmill {
namespace fault {

namespace {

/** FNV-1a over @p s: a stable per-link sub-stream key, so each link's
 *  loss stream depends only on the run seed and the link's name. */
std::uint64_t
nameKey(const std::string &s)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (char c : s) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ull;
    }
    return h;
}

} // namespace

FaultInjector::FaultInjector(sim::Simulation &sim_, FaultPlan plan_,
                             std::uint64_t runSeed)
    : sim(sim_), plan(std::move(plan_)), seed(runSeed),
      appliedCounter(sim_.metrics().counter("fault.windows_applied"))
{
    plan.validate();
}

void
FaultInjector::attachLinks(const std::vector<net::Link *> &links)
{
    linkHooks = links;
    const Rng lossRoot = Rng(0xfa017155eedull ^ seed);
    for (net::Link *link : linkHooks)
        link->armFaults(lossRoot.substream(nameKey(link->name())));
}

void
FaultInjector::attachShim(server::ServiceFaultShim &shim_)
{
    shim = &shim_;
}

void
FaultInjector::attachNic(hw::Nic &nic_)
{
    nic = &nic_;
}

void
FaultInjector::attachBackendShim(std::uint32_t backend,
                                 server::ServiceFaultShim &shim_)
{
    backendShims[backend] = &shim_;
}

void
FaultInjector::attachBackendNic(std::uint32_t backend, hw::Nic &nic_)
{
    backendNics[backend] = &nic_;
}

void
FaultInjector::attachRackLinks(std::uint32_t rack,
                               const std::vector<net::Link *> &links)
{
    rackLinkHooks[rack] = links;
}

std::vector<net::Link *>
FaultInjector::matchLinks(const std::string &target) const
{
    std::vector<net::Link *> matched;
    for (net::Link *link : linkHooks) {
        if (target.empty() ||
            link->name().find(target) != std::string::npos)
            matched.push_back(link);
    }
    return matched;
}

void
FaultInjector::scheduleWindow(const FaultEvent &ev, SimTime start)
{
    const SimTime end = start + ev.duration;
    std::string label = faultKindName(ev.kind);
    if (!ev.target.empty())
        label += "(" + ev.target + ")";
    if (ev.backend >= 0)
        label += strprintf("[backend%d]", ev.backend);
    if (ev.kind == FaultKind::TorOutage)
        label += strprintf("[rack%u]", ev.rack);
    windows.push_back({label, start, end});

    // Server faults resolve their hook by backend id: -1 is the
    // classic front-server shim/NIC, >= 0 a cluster shard's.
    const auto shimFor = [&]() -> server::ServiceFaultShim * {
        if (ev.backend < 0)
            return shim;
        const auto it =
            backendShims.find(static_cast<std::uint32_t>(ev.backend));
        return it != backendShims.end() ? it->second : nullptr;
    };
    const auto nicFor = [&]() -> hw::Nic * {
        if (ev.backend < 0)
            return nic;
        const auto it =
            backendNics.find(static_cast<std::uint32_t>(ev.backend));
        return it != backendNics.end() ? it->second : nullptr;
    };

    const auto applied = [this] {
        ++appliedCount;
        appliedCounter.add();
        sim.countEvent("fault.apply");
    };

    switch (ev.kind) {
      case FaultKind::LinkLoss: {
        auto links = matchLinks(ev.target);
        if (links.empty())
            throw ConfigError(strprintf(
                "link_loss target \"%s\" matches no link",
                ev.target.c_str()));
        const double p = ev.lossProbability;
        sim.scheduleAt(start, [links, p, applied] {
            for (net::Link *link : links)
                link->setLossProbability(p);
            applied();
        });
        sim.scheduleAt(end, [links] {
            for (net::Link *link : links)
                link->setLossProbability(0.0);
        });
        break;
      }
      case FaultKind::LinkDegrade: {
        auto links = matchLinks(ev.target);
        if (links.empty())
            throw ConfigError(strprintf(
                "link_degrade target \"%s\" matches no link",
                ev.target.c_str()));
        const double bw = ev.bandwidthFactor;
        const SimDuration extra = ev.extraLatency;
        sim.scheduleAt(start, [links, bw, extra, applied] {
            for (net::Link *link : links) {
                link->setBandwidthFactor(bw);
                link->setExtraPropagation(extra);
            }
            applied();
        });
        sim.scheduleAt(end, [links] {
            for (net::Link *link : links) {
                link->setBandwidthFactor(1.0);
                link->setExtraPropagation(0);
            }
        });
        break;
      }
      case FaultKind::ServerStall: {
        server::ServiceFaultShim *target = shimFor();
        if (target == nullptr)
            throw ConfigError(strprintf(
                "server_stall fault (backend %d) needs an attached "
                "server shim",
                ev.backend));
        sim.scheduleAt(start, [target, end, applied] {
            target->beginStall(end);
            applied();
        });
        break;
      }
      case FaultKind::ServerCrash: {
        server::ServiceFaultShim *target = shimFor();
        if (target == nullptr)
            throw ConfigError(strprintf(
                "server_crash fault (backend %d) needs an attached "
                "server shim",
                ev.backend));
        const SimDuration warmup = ev.warmup;
        const SimDuration penalty = ev.warmupPenalty;
        sim.scheduleAt(start, [target, end, warmup, penalty, applied] {
            target->beginCrash(end, warmup, penalty);
            applied();
        });
        if (warmup > 0)
            windows.push_back({label + ":warmup", end, end + warmup});
        break;
      }
      case FaultKind::NicInterruptStorm: {
        hw::Nic *target = nicFor();
        if (target == nullptr)
            throw ConfigError(strprintf(
                "nic_storm fault (backend %d) needs an attached "
                "server NIC",
                ev.backend));
        const double factor = ev.irqCostFactor;
        sim.scheduleAt(start, [target, factor, applied] {
            target->setIrqLoadFactor(factor);
            applied();
        });
        sim.scheduleAt(end,
                       [target] { target->setIrqLoadFactor(1.0); });
        break;
      }
      case FaultKind::TorOutage: {
        const auto it = rackLinkHooks.find(ev.rack);
        if (it == rackLinkHooks.end() || it->second.empty())
            throw ConfigError(strprintf(
                "tor_outage fault targets rack %u but no rack links "
                "are attached",
                ev.rack));
        // One switch failing over degrades every link behind it in
        // the same instant -- the correlated version of link_degrade
        // plus link_loss.
        const std::vector<net::Link *> links = it->second;
        const double bw = ev.bandwidthFactor;
        const SimDuration extra = ev.extraLatency;
        const double p = ev.lossProbability;
        sim.scheduleAt(start, [links, bw, extra, p, applied] {
            for (net::Link *link : links) {
                link->setBandwidthFactor(bw);
                link->setExtraPropagation(extra);
                link->setLossProbability(p);
            }
            applied();
        });
        sim.scheduleAt(end, [links] {
            for (net::Link *link : links) {
                link->setBandwidthFactor(1.0);
                link->setExtraPropagation(0);
                link->setLossProbability(0.0);
            }
        });
        break;
      }
    }
}

void
FaultInjector::arm()
{
    for (const FaultEvent &ev : plan.events) {
        for (std::uint32_t k = 0; k < ev.repeatCount; ++k)
            scheduleWindow(ev, ev.start + k * ev.period);
    }
}

} // namespace fault
} // namespace treadmill
