#include "fault/injector.h"

#include <utility>

#include "util/error.h"
#include "util/strings.h"

namespace treadmill {
namespace fault {

namespace {

/** FNV-1a over @p s: a stable per-link sub-stream key, so each link's
 *  loss stream depends only on the run seed and the link's name. */
std::uint64_t
nameKey(const std::string &s)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (char c : s) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ull;
    }
    return h;
}

} // namespace

FaultInjector::FaultInjector(sim::Simulation &sim_, FaultPlan plan_,
                             std::uint64_t runSeed)
    : sim(sim_), plan(std::move(plan_)), seed(runSeed),
      appliedCounter(sim_.metrics().counter("fault.windows_applied"))
{
    plan.validate();
}

void
FaultInjector::attachLinks(const std::vector<net::Link *> &links)
{
    linkHooks = links;
    const Rng lossRoot = Rng(0xfa017155eedull ^ seed);
    for (net::Link *link : linkHooks)
        link->armFaults(lossRoot.substream(nameKey(link->name())));
}

void
FaultInjector::attachShim(server::ServiceFaultShim &shim_)
{
    shim = &shim_;
}

void
FaultInjector::attachNic(hw::Nic &nic_)
{
    nic = &nic_;
}

std::vector<net::Link *>
FaultInjector::matchLinks(const std::string &target) const
{
    std::vector<net::Link *> matched;
    for (net::Link *link : linkHooks) {
        if (target.empty() ||
            link->name().find(target) != std::string::npos)
            matched.push_back(link);
    }
    return matched;
}

void
FaultInjector::scheduleWindow(const FaultEvent &ev, SimTime start)
{
    const SimTime end = start + ev.duration;
    std::string label = faultKindName(ev.kind);
    if (!ev.target.empty())
        label += "(" + ev.target + ")";
    windows.push_back({label, start, end});

    const auto applied = [this] {
        ++appliedCount;
        appliedCounter.add();
        sim.countEvent("fault.apply");
    };

    switch (ev.kind) {
      case FaultKind::LinkLoss: {
        auto links = matchLinks(ev.target);
        if (links.empty())
            throw ConfigError(strprintf(
                "link_loss target \"%s\" matches no link",
                ev.target.c_str()));
        const double p = ev.lossProbability;
        sim.scheduleAt(start, [links, p, applied] {
            for (net::Link *link : links)
                link->setLossProbability(p);
            applied();
        });
        sim.scheduleAt(end, [links] {
            for (net::Link *link : links)
                link->setLossProbability(0.0);
        });
        break;
      }
      case FaultKind::LinkDegrade: {
        auto links = matchLinks(ev.target);
        if (links.empty())
            throw ConfigError(strprintf(
                "link_degrade target \"%s\" matches no link",
                ev.target.c_str()));
        const double bw = ev.bandwidthFactor;
        const SimDuration extra = ev.extraLatency;
        sim.scheduleAt(start, [links, bw, extra, applied] {
            for (net::Link *link : links) {
                link->setBandwidthFactor(bw);
                link->setExtraPropagation(extra);
            }
            applied();
        });
        sim.scheduleAt(end, [links] {
            for (net::Link *link : links) {
                link->setBandwidthFactor(1.0);
                link->setExtraPropagation(0);
            }
        });
        break;
      }
      case FaultKind::ServerStall: {
        if (shim == nullptr)
            throw ConfigError(
                "server_stall fault needs an attached server shim");
        server::ServiceFaultShim *target = shim;
        sim.scheduleAt(start, [target, end, applied] {
            target->beginStall(end);
            applied();
        });
        break;
      }
      case FaultKind::ServerCrash: {
        if (shim == nullptr)
            throw ConfigError(
                "server_crash fault needs an attached server shim");
        server::ServiceFaultShim *target = shim;
        const SimDuration warmup = ev.warmup;
        const SimDuration penalty = ev.warmupPenalty;
        sim.scheduleAt(start, [target, end, warmup, penalty, applied] {
            target->beginCrash(end, warmup, penalty);
            applied();
        });
        if (warmup > 0)
            windows.push_back({label + ":warmup", end, end + warmup});
        break;
      }
      case FaultKind::NicInterruptStorm: {
        if (nic == nullptr)
            throw ConfigError(
                "nic_storm fault needs an attached server NIC");
        hw::Nic *target = nic;
        const double factor = ev.irqCostFactor;
        sim.scheduleAt(start, [target, factor, applied] {
            target->setIrqLoadFactor(factor);
            applied();
        });
        sim.scheduleAt(end,
                       [target] { target->setIrqLoadFactor(1.0); });
        break;
      }
    }
}

void
FaultInjector::arm()
{
    for (const FaultEvent &ev : plan.events) {
        for (std::uint32_t k = 0; k < ev.repeatCount; ++k)
            scheduleWindow(ev, ev.start + k * ev.period);
    }
}

} // namespace fault
} // namespace treadmill
