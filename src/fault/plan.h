/**
 * @file
 * Declarative fault plans: timed, schedule-driven fault windows.
 *
 * Real production tails are dominated by failure modes a healthy
 * simulated cluster never produces: lossy or degraded links, service
 * freezes (GC, compaction), crash-and-restart cycles, and interrupt
 * storms. A FaultPlan describes such events declaratively -- the same
 * JSON-config style as WorkloadConfig -- so a load test can replay an
 * identical fault schedule run after run. All fault timing is virtual
 * (driven off the EventQueue) and all fault randomness derives from the
 * run seed, so faulted runs stay bit-exact and seed-isolated under
 * parallel execution exactly like healthy ones.
 */

#ifndef TREADMILL_FAULT_PLAN_H_
#define TREADMILL_FAULT_PLAN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/json.h"
#include "util/types.h"

namespace treadmill {
namespace fault {

/** The fault classes the injector knows how to apply. */
enum class FaultKind {
    /** Drop packets on matching links with a fixed probability. */
    LinkLoss,
    /** Scale matching links' bandwidth and/or add propagation delay. */
    LinkDegrade,
    /** Freeze the server's request intake (GC/compaction pause). */
    ServerStall,
    /** Crash the server: arriving requests are dropped until restart,
     *  then served with a linearly decaying warm-up penalty. */
    ServerCrash,
    /** NIC interrupt storm: interrupt handling cost multiplies. */
    NicInterruptStorm,
    /** ToR-switch outage: every link of one rack degrades (and may
     *  drop packets) for the window -- the correlated fault that makes
     *  several backends slow at once. */
    TorOutage,
};

/** Canonical JSON name of @p kind ("link_loss", "server_stall", ...). */
const std::string &faultKindName(FaultKind kind);

/** Inverse of faultKindName(); throws ConfigError on unknown names. */
FaultKind faultKindFromName(const std::string &name);

/**
 * One timed fault window.
 *
 * The fault applies at `start` and reverts at `start + duration`.
 * When `repeatCount > 1` the window recurs every `period` (measured
 * start-to-start), modeling periodic pauses such as GC cycles.
 */
struct FaultEvent {
    FaultKind kind = FaultKind::ServerStall;
    SimTime start = 0;
    SimDuration duration = 0;

    /** Substring match against link names ("client0", "server-");
     *  empty matches every link. Link faults only. */
    std::string target;

    /**
     * Cluster runs: the backend shard the fault strikes, for
     * server_stall / server_crash (the shard's service shim) and
     * nic_storm (the shard machine's NIC). -1 targets the front
     * server, the classic single-server hook.
     */
    int backend = -1;

    /** @name TorOutage
     * The rack whose links degrade together. @{ */
    std::uint32_t rack = 0;
    /** @} */

    /** Recurrence: fire `repeatCount` windows, `period` apart. */
    SimDuration period = 0;
    std::uint32_t repeatCount = 1;

    /** @name LinkLoss
     * @{ */
    double lossProbability = 0.0;
    /** @} */

    /** @name LinkDegrade
     * @{ */
    double bandwidthFactor = 1.0; ///< Multiplies link bandwidth (< 1 = slower).
    SimDuration extraLatency = 0; ///< Added one-way propagation.
    /** @} */

    /** @name ServerCrash
     * @{ */
    SimDuration warmup = 0;        ///< Degraded window after restart.
    SimDuration warmupPenalty = 0; ///< Extra delay at restart instant,
                                   ///< decaying linearly to 0 over warmup.
    /** @} */

    /** @name NicInterruptStorm
     * @{ */
    double irqCostFactor = 1.0; ///< Multiplies interrupt-handling cycles.
    /** @} */
};

/**
 * A complete fault schedule for one experiment run.
 *
 * The default-constructed plan is the all-zeros plan: no events, and
 * the experiment harness wires no fault machinery at all, so a run
 * with an empty plan is bit-identical to a build without the fault
 * subsystem.
 */
struct FaultPlan {
    std::vector<FaultEvent> events;

    /** True when no fault will ever be applied. */
    bool empty() const { return events.empty(); }

    /**
     * Parse from a JSON document, e.g.:
     * {"events": [
     *    {"kind": "server_stall", "start_ms": 50, "duration_ms": 3,
     *     "period_ms": 100, "repeat": 20},
     *    {"kind": "link_loss", "target": "client0",
     *     "start_ms": 100, "duration_ms": 40, "loss_probability": 0.2},
     *    {"kind": "link_degrade", "start_ms": 200, "duration_ms": 50,
     *     "bandwidth_factor": 0.25, "extra_latency_us": 150},
     *    {"kind": "server_crash", "start_ms": 300, "duration_ms": 80,
     *     "warmup_ms": 40, "warmup_penalty_us": 400},
     *    {"kind": "nic_storm", "start_ms": 450, "duration_ms": 30,
     *     "irq_cost_factor": 25},
     *    {"kind": "server_stall", "backend": 2, "start_ms": 500,
     *     "duration_ms": 5},
     *    {"kind": "tor_outage", "rack": 1, "start_ms": 600,
     *     "duration_ms": 40, "bandwidth_factor": 0.2,
     *     "extra_latency_us": 200, "loss_probability": 0.05}
     * ]}
     * Times are simulated milliseconds (fractions allowed). "backend"
     * (default -1 = the front server) aims server faults at one
     * cluster shard; "rack" names a tor_outage's blast radius.
     *
     * @throws ConfigError on malformed or out-of-range values.
     */
    static FaultPlan fromJson(const json::Value &doc);

    /** Serialize back to the JSON schema fromJson() accepts. */
    json::Value toJson() const;

    /**
     * Validate ranges and reject overlapping windows of the same kind
     * on the same target (an overlap would make revert order, and thus
     * the restored state, ambiguous).
     *
     * @throws ConfigError when inconsistent.
     */
    void validate() const;
};

} // namespace fault
} // namespace treadmill

#endif // TREADMILL_FAULT_PLAN_H_
