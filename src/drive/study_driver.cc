#include "drive/study_driver.h"

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>
#include <utility>

#include "analysis/provenance.h"
#include "exec/parallel_for.h"
#include "regress/design.h"
#include "util/error.h"
#include "util/strings.h"

namespace treadmill {
namespace drive {

namespace {

/** One completed run handed from the simulation thread to the fitter. */
struct Completion {
    std::size_t index = 0;
    /** tau -> snapshotted response (the exact archived doubles). */
    std::map<double, double> quantileUs;
};

} // namespace

StudyDriver::StudyDriver(StudyDriverParams params)
    : controls(std::move(params))
{
    if (controls.factors.empty())
        throw ConfigError("study driver: factors must be nonempty");
    if (controls.fit.quantiles.empty())
        throw ConfigError(
            "study driver: fit.quantiles must be nonempty");
    for (double tau : controls.fit.quantiles) {
        if (!(tau > 0.0) || !(tau < 1.0))
            throw ConfigError(strprintf(
                "study driver: quantile must lie in (0, 1), got %g",
                tau));
    }
    if (controls.reservoirCapacity == 0)
        throw ConfigError(
            "study driver: reservoirCapacity must be nonzero");
}

StudyOutcome
StudyDriver::run(const std::vector<StudyRun> &plan,
                 store::StudyWriter *archive)
{
    for (std::size_t i = 0; i < plan.size(); ++i) {
        if (plan[i].levels.size() != controls.factors.size())
            throw ConfigError(strprintf(
                "study driver: plan entry %zu carries %zu levels for "
                "%zu factors",
                i, plan[i].levels.size(), controls.factors.size()));
    }

    std::vector<double> taus = controls.fit.quantiles;
    std::sort(taus.begin(), taus.end());
    taus.erase(std::unique(taus.begin(), taus.end()), taus.end());

    core::RunRecordOptions record;
    record.quantiles = taus;
    record.reservoirCapacity = controls.reservoirCapacity;
    record.aggregation = controls.aggregation;

    std::mutex mutex;
    std::condition_variable ready;
    std::deque<Completion> queue; // tm:guarded_by(mutex)
    bool producerDone = false;    // tm:guarded_by(mutex)
    std::exception_ptr failure;   // tm:guarded_by(mutex)

    // Producer: simulate + persist on the pool; the caller's thread
    // stays free to fit. parallelFor stops remaining indices on the
    // first exception and rethrows it here.
    std::thread producer([&] {
        try {
            exec::parallelFor(
                controls.parallelism, plan.size(), [&](std::size_t i) {
                    const core::ExperimentResult result =
                        core::runExperiment(plan[i].params);
                    store::RunRecord rec = core::toRunRecord(
                        plan[i].params, result, plan[i].levels,
                        record);
                    if (controls.attachProvenance &&
                        !result.spans.empty()) {
                        const analysis::ProvenanceReport report =
                            analysis::tailProvenance(
                                result.spans,
                                controls.provenanceQuantiles);
                        for (const analysis::QuantileProvenance &qp :
                             report.quantiles)
                            for (const analysis::SegmentContribution
                                     &seg : qp.segments)
                                rec.provenance.push_back(
                                    {qp.tau,
                                     static_cast<std::uint64_t>(
                                         seg.kind),
                                     seg.meanUs, seg.share});
                    }
                    if (archive != nullptr)
                        archive->writeRun(i, rec);

                    Completion done;
                    done.index = i;
                    for (std::size_t t = 0;
                         t < rec.quantileTaus.size(); ++t)
                        done.quantileUs[rec.quantileTaus[t]] =
                            rec.quantileUs[t];
                    {
                        std::lock_guard<std::mutex> lock(mutex);
                        queue.push_back(std::move(done));
                    }
                    ready.notify_one();
                });
        } catch (...) {
            std::lock_guard<std::mutex> lock(mutex);
            failure = std::current_exception();
        }
        {
            std::lock_guard<std::mutex> lock(mutex);
            producerDone = true;
        }
        ready.notify_one();
    });

    // Consumer: drain completions, refitting while runs are still in
    // flight. Incremental models are progress signals and discarded;
    // only the final plan-order fit is returned.
    StudyOutcome out;
    const regress::FactorialDesign design(controls.factors);
    std::vector<std::map<double, double>> perRun(plan.size());
    std::vector<bool> have(plan.size(), false);
    std::size_t completed = 0;
    unsigned sinceFit = 0;
    const std::size_t cells = std::size_t{1} << controls.factors.size();

    const auto gather = [&](std::size_t upTo) {
        std::vector<std::vector<double>> levels;
        std::map<double, std::vector<double>> responses;
        for (std::size_t i = 0; i < upTo; ++i) {
            if (!have[i])
                continue;
            levels.push_back(plan[i].levels);
            for (const auto &[tau, value] : perRun[i])
                responses[tau].push_back(value);
        }
        return std::make_pair(std::move(levels), std::move(responses));
    };

    while (true) {
        Completion done;
        {
            std::unique_lock<std::mutex> lock(mutex);
            ready.wait(lock, [&] {
                return !queue.empty() || producerDone;
            });
            if (queue.empty())
                break;
            done = std::move(queue.front());
            queue.pop_front();
        }
        perRun[done.index] = std::move(done.quantileUs);
        have[done.index] = true;
        ++completed;
        ++sinceFit;

        const bool inFlight = completed < plan.size();
        if (controls.refitEvery != 0 && inFlight &&
            sinceFit >= controls.refitEvery && completed >= cells) {
            auto [levels, responses] = gather(plan.size());
            try {
                analysis::fitFactorialModels(design, levels,
                                             responses, controls.fit);
                ++out.refitsOverlapped;
            } catch (const Error &) {
                // A partial data set can be rank-deficient; the next
                // completion retries, and the final fit always runs.
            }
            sinceFit = 0;
        }
    }
    producer.join();
    // tmlint:allow-next-line(guarded-by): producer joined above; no concurrent writers remain
    if (failure)
        // tmlint:allow-next-line(guarded-by): producer joined above; no concurrent writers remain
        std::rethrow_exception(failure);

    // Final fit over all runs in plan order -- bit-identical to
    // analysis::refitFromStore on the archive this call wrote.
    auto [levels, responses] = gather(plan.size());
    out.levels = std::move(levels);
    out.responses = std::move(responses);
    out.runs = plan.size();
    out.models = analysis::fitFactorialModels(design, out.levels,
                                              out.responses,
                                              controls.fit);
    return out;
}

} // namespace drive
} // namespace treadmill
