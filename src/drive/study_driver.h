/**
 * @file
 * StudyDriver: the simulate -> persist -> fit pipeline.
 *
 * A factorial study has three stages per run: simulate it, persist it
 * to the run store, and (periodically) refit the factorial models on
 * everything measured so far. Running them strictly in sequence
 * leaves the analysis idle while simulations run and the simulator
 * idle while models fit. StudyDriver overlaps them: simulations fan
 * out on a background thread (exec::parallelFor, seed-isolated), each
 * completed run is archived immediately under its plan index, and the
 * caller's thread drains a completion queue performing incremental
 * refits while later runs are still simulating -- fitting run k
 * overlaps simulating run k+1.
 *
 * Determinism: archives are seq-addressed and each run's bytes are a
 * pure function of its plan entry, and the final fit consumes
 * responses in plan order, so the archive and the final models are
 * bit-identical for every Parallelism setting and completion order.
 */

#ifndef TREADMILL_DRIVE_STUDY_DRIVER_H_
#define TREADMILL_DRIVE_STUDY_DRIVER_H_

#include <map>
#include <vector>

#include "analysis/attribution.h"
#include "core/experiment.h"
#include "core/run_record.h"
#include "store/writer.h"

namespace treadmill {
namespace drive {

/** One planned run: a full experiment plus its factor levels. */
struct StudyRun {
    core::ExperimentParams params;
    /** One 0/1 level per study factor. */
    std::vector<double> levels;
};

/** Controls for a pipelined factorial study. */
struct StudyDriverParams {
    /** Factor names; every StudyRun must carry one level per name. */
    std::vector<std::string> factors;
    /** Quantile-regression controls; `quantiles` also selects which
     *  taus each archived run snapshots. */
    analysis::FactorialFitParams fit;
    core::AggregationKind aggregation =
        core::AggregationKind::PerInstance;
    /** Latency reservoir capacity persisted per run. */
    std::size_t reservoirCapacity = 20000;
    /** Attach tail-provenance rows to each archived run (requires the
     *  plan entries to enable tracing; runs without spans are archived
     *  without provenance columns). */
    bool attachProvenance = false;
    std::vector<double> provenanceQuantiles{0.5, 0.99};
    /** Refit the models after every this many newly completed runs
     *  while simulation is still in flight; 0 disables incremental
     *  refits (the final fit always happens). */
    unsigned refitEvery = 0;
    /** Worker knob for the simulation fan-out. */
    exec::Parallelism parallelism{};
};

/** Outcome of one driven study. */
struct StudyOutcome {
    /** Final models, fitted over all runs in plan order. */
    std::vector<analysis::QuantileModel> models;
    /** tau -> one response per run, plan order (what the fit saw). */
    std::map<double, std::vector<double>> responses;
    std::vector<std::vector<double>> levels;
    /** Incremental refits that completed while at least one run was
     *  still simulating -- the pipeline's overlap evidence. */
    unsigned refitsOverlapped = 0;
    std::size_t runs = 0;
};

class StudyDriver
{
  public:
    /** @throws ConfigError on empty factors or quantiles. */
    explicit StudyDriver(StudyDriverParams params);

    /**
     * Execute @p plan. When @p archive is non-null, run i is persisted
     * as seq i the moment it completes (the caller owns finish()).
     * Every plan entry must carry factors().size() levels.
     *
     * @throws ConfigError on a malformed plan; rethrows the first
     *         simulation/persistence failure after workers stop.
     */
    StudyOutcome run(const std::vector<StudyRun> &plan,
                     store::StudyWriter *archive = nullptr);

    const StudyDriverParams &params() const { return controls; }

  private:
    StudyDriverParams controls;
};

} // namespace drive
} // namespace treadmill

#endif // TREADMILL_DRIVE_STUDY_DRIVER_H_
