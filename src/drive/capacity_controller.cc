#include "drive/capacity_controller.h"

#include <algorithm>

#include "core/run_record.h"
#include "stats/summary.h"
#include "util/error.h"
#include "util/strings.h"

namespace treadmill {
namespace drive {

CapacityController::CapacityController(CapacityControllerParams params)
    : controls(std::move(params))
{
    analysis::validateCapacityParams(controls.search);
    if (controls.maxRunsPerProbe < controls.search.runsPerPoint)
        throw ConfigError(strprintf(
            "capacity controller: maxRunsPerProbe (%u) must be at "
            "least runsPerPoint (%u)",
            controls.maxRunsPerProbe, controls.search.runsPerPoint));
    if (!(controls.confidence >= 0.5) ||
        !(controls.confidence < 1.0))
        throw ConfigError(strprintf(
            "capacity controller: confidence must lie in [0.5, 1), "
            "got %g",
            controls.confidence));
    if (!(controls.utilizationTolerance > 0.0))
        throw ConfigError(strprintf(
            "capacity controller: utilizationTolerance must be "
            "positive, got %g",
            controls.utilizationTolerance));
}

ProbeOutcome
CapacityController::probe(double utilization, unsigned probeIndex,
                          store::StudyWriter *archive,
                          unsigned &nextArchiveSeq)
{
    const analysis::CapacityParams &search = controls.search;
    ProbeOutcome outcome;
    outcome.utilization = utilization;

    unsigned runsDone = 0;
    while (true) {
        // First wave fans runsPerPoint runs across threads; each
        // re-probe adds one fresh seed (a new placement -- the
        // paper's hysteresis procedure).
        const unsigned batch =
            runsDone == 0 ? search.runsPerPoint : 1u;
        std::vector<core::ExperimentParams> runs;
        runs.reserve(batch);
        for (unsigned i = 0; i < batch; ++i) {
            core::ExperimentParams p = search.base;
            p.targetUtilization = utilization;
            p.requestsPerSecond = 0.0; // derive from utilization
            p.seed = search.seed * 6151 +
                     static_cast<std::uint64_t>(probeIndex) * 24593 +
                     (runsDone + i) * 131 + 7;
            runs.push_back(std::move(p));
        }
        const auto results =
            core::runExperiments(runs, search.parallelism);
        for (std::size_t i = 0; i < results.size(); ++i) {
            outcome.perRunQuantileUs.push_back(
                results[i].aggregatedQuantile(
                    search.tau, core::AggregationKind::PerInstance));
            outcome.requestsPerSecond = results[i].targetRps;
            if (archive != nullptr) {
                core::RunRecordOptions opts;
                opts.quantiles = {0.5, search.tau};
                std::sort(opts.quantiles.begin(),
                          opts.quantiles.end());
                opts.quantiles.erase(
                    std::unique(opts.quantiles.begin(),
                                opts.quantiles.end()),
                    opts.quantiles.end());
                archive->writeRun(
                    nextArchiveSeq++,
                    core::toRunRecord(runs[i], results[i],
                                      {utilization}, opts));
            }
        }
        runsDone += batch;

        outcome.comparison = analysis::compareToSlo(
            outcome.perRunQuantileUs, search.sloUs,
            controls.confidence);
        if (outcome.comparison.verdict !=
            analysis::SloVerdict::Uncertain) {
            outcome.earlyExit = runsDone < controls.maxRunsPerProbe;
            outcome.meetsSlo = outcome.comparison.verdict ==
                               analysis::SloVerdict::Clears;
            return outcome;
        }
        if (runsDone >= controls.maxRunsPerProbe) {
            // Budget exhausted with the CI still straddling the
            // bound: fall back to the mean, verdict stays Uncertain.
            outcome.meetsSlo =
                outcome.comparison.mean <= search.sloUs;
            return outcome;
        }
    }
}

CapacitySearchResult
CapacityController::search(store::StudyWriter *archive)
{
    const analysis::CapacityParams &params = controls.search;
    CapacitySearchResult result;
    result.fixedPlannerRuns =
        (2 + params.maxIterations) * params.runsPerPoint;
    unsigned nextSeq = 0;
    unsigned probeIndex = 0;

    const auto runProbe = [&](double utilization) {
        ProbeOutcome outcome =
            probe(utilization, probeIndex++, archive, nextSeq);
        result.totalRuns += static_cast<unsigned>(
            outcome.perRunQuantileUs.size());
        result.probes.push_back(outcome);
        return outcome;
    };

    // Establish the bracket.
    const ProbeOutcome low = runProbe(params.utilizationLow);
    if (!low.meetsSlo) {
        result.infeasible = true;
        return result;
    }
    const ProbeOutcome high = runProbe(params.utilizationHigh);
    if (high.meetsSlo) {
        result.maxUtilization = high.utilization;
        result.maxRequestsPerSecond = high.requestsPerSecond;
        result.latencyAtMaxUs = high.comparison.mean;
        result.converged = true;
        return result;
    }

    // Narrow: invariant low meets the SLO, high does not.
    ProbeOutcome best = low;
    double lo = params.utilizationLow;
    double hi = params.utilizationHigh;
    for (unsigned it = 0; it < params.maxIterations; ++it) {
        if (hi - lo <= controls.utilizationTolerance) {
            result.converged = true;
            break;
        }
        const double mid = 0.5 * (lo + hi);
        const ProbeOutcome point = runProbe(mid);
        if (point.meetsSlo) {
            best = point;
            lo = mid;
        } else {
            hi = mid;
        }
    }
    if (hi - lo <= controls.utilizationTolerance)
        result.converged = true;

    result.maxUtilization = best.utilization;
    result.maxRequestsPerSecond = best.requestsPerSecond;
    result.latencyAtMaxUs = best.comparison.mean;
    return result;
}

} // namespace drive
} // namespace treadmill
