/**
 * @file
 * Closed-loop SLO capacity search over live runs.
 *
 * analysis::planCapacity walks a fixed-bracket bisection with a fixed
 * number of runs per probe: 8 iterations x 3 runs burns 30 runs no
 * matter how obvious each probe's answer is. CapacityController keeps
 * the bisection skeleton but makes each probe adaptive, per the
 * paper's repeated-experiment procedure and DiPerF's closed-loop
 * envelope extraction (PAPERS.md):
 *
 *  - every probe starts with minRunsPerProbe fresh-seeded runs and
 *    compares the per-run tau-quantiles against the SLO with a
 *    Student-t confidence interval (analysis::compareToSlo);
 *  - if the CI cleanly clears or violates the bound the probe stops
 *    early -- no budget wasted confirming the obvious;
 *  - if the CI straddles the bound, the point is re-probed with
 *    another fresh seed (hysteresis: new placement, same load) until
 *    the band resolves or maxRunsPerProbe is reached;
 *  - the bracket only narrows on a resolved verdict or an exhausted
 *    probe, and the search stops once the bracket is narrower than
 *    utilizationTolerance -- tight SLOs resolve in fewer probes than
 *    a fixed iteration count would spend.
 *
 * Every run can be persisted to a run store archive as it completes,
 * so the whole search is re-analyzable from disk afterwards.
 */

#ifndef TREADMILL_DRIVE_CAPACITY_CONTROLLER_H_
#define TREADMILL_DRIVE_CAPACITY_CONTROLLER_H_

#include <cstdint>
#include <vector>

#include "analysis/capacity.h"
#include "core/experiment.h"
#include "store/writer.h"

namespace treadmill {
namespace drive {

/** Controls for the adaptive search. */
struct CapacityControllerParams {
    /** Bracket, SLO, tau, base experiment, seed, and parallelism are
     *  shared with the fixed planner (and validated identically via
     *  analysis::validateCapacityParams). runsPerPoint is the *floor*
     *  runs per probe here; maxIterations caps bracket-narrowing
     *  steps. */
    analysis::CapacityParams search;
    /** Ceiling on fresh-seed re-probes of an uncertain point. */
    unsigned maxRunsPerProbe = 6;
    /** Confidence level of the probe CI. */
    double confidence = 0.95;
    /** Stop once the bracket is narrower than this. */
    double utilizationTolerance = 0.02;
};

/** One adaptively probed operating point. */
struct ProbeOutcome {
    double utilization = 0.0;
    double requestsPerSecond = 0.0;
    std::vector<double> perRunQuantileUs;
    analysis::SloComparison comparison;
    /** True when the CI resolved before maxRunsPerProbe. */
    bool earlyExit = false;
    /** True when the probe point satisfies the SLO (by CI verdict,
     *  falling back to the mean when the budget ran out). */
    bool meetsSlo = false;
};

/** Outcome of the closed-loop search. */
struct CapacitySearchResult {
    double maxUtilization = 0.0;
    double maxRequestsPerSecond = 0.0;
    double latencyAtMaxUs = 0.0;
    bool infeasible = false;
    /** True when the bracket narrowed below tolerance (as opposed to
     *  running out of iterations). */
    bool converged = false;
    /** Total experiments simulated across all probes. */
    unsigned totalRuns = 0;
    /** Runs the fixed planner would have spent on the same search:
     *  (2 bracket probes + maxIterations) * runsPerPoint. */
    unsigned fixedPlannerRuns = 0;
    std::vector<ProbeOutcome> probes;
};

class CapacityController
{
  public:
    /** @throws ConfigError naming any invalid field. */
    explicit CapacityController(CapacityControllerParams params);

    /**
     * Run the adaptive search. When @p archive is non-null every
     * simulated run is persisted as it completes (factor
     * "utilization", level = the probe's utilization); the caller
     * owns finish().
     */
    CapacitySearchResult search(store::StudyWriter *archive = nullptr);

    const CapacityControllerParams &params() const { return controls; }

  private:
    ProbeOutcome probe(double utilization, unsigned probeIndex,
                       store::StudyWriter *archive,
                       unsigned &nextArchiveSeq);

    CapacityControllerParams controls;
};

} // namespace drive
} // namespace treadmill

#endif // TREADMILL_DRIVE_CAPACITY_CONTROLLER_H_
