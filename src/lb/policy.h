/**
 * @file
 * Pluggable load-balancer scheduling policies.
 *
 * A policy answers two questions the balancer asks on every request:
 * which of the key's replicas receives it (selection), and in what
 * order queued requests dispatch once a backend slot frees (ordering).
 * The three shipped policies cover the classical design space:
 *
 *  - FCFS: primary replica, arrival-order dispatch -- the baseline
 *    router every comparison starts from.
 *  - Power-of-two-choices: sample two distinct replicas, send to the
 *    one with fewer requests in flight (Mitzenmacher's exponential
 *    improvement over random placement); arrival-order dispatch.
 *  - EDF: primary replica, but the dispatch queue orders by deadline
 *    (intended send + slack), so requests already deep in their
 *    latency budget jump ahead -- the tail-aware discipline.
 *
 * Policies are deterministic: the only randomness (power-of-two's
 * replica sampling) draws from an Rng seeded by the run seed.
 */

#ifndef TREADMILL_LB_POLICY_H_
#define TREADMILL_LB_POLICY_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "server/request.h"
#include "util/rng.h"
#include "util/types.h"

namespace treadmill {
namespace lb {

/** The shipped policies, selectable from experiment configs. */
enum class PolicyKind { Fcfs, PowerOfTwo, Edf };

/** Canonical config name ("fcfs", "p2c", "edf"). */
const std::string &policyKindName(PolicyKind kind);

/** Inverse of policyKindName(); throws ConfigError on unknown names. */
PolicyKind policyKindFromName(const std::string &name);

/** Read-only per-backend state the balancer exposes to policies. */
struct BackendSnapshot {
    const std::uint64_t *inflight = nullptr; ///< Per-backend in flight.
    std::size_t count = 0;                   ///< Number of backends.
};

/**
 * The common policy interface behind the load balancer.
 *
 * Both hooks run on the dispatch hot path; implementations must not
 * allocate or touch ambient state.
 */
class SchedulingPolicy
{
  public:
    virtual ~SchedulingPolicy() = default;

    virtual const char *name() const = 0;

    /**
     * Pick the element of @p candidates (healthy replicas of the
     * request's key, primary first, never empty) that receives
     * @p request.
     *
     * @return An index into @p candidates.
     */
    virtual std::size_t select(
        const std::vector<std::uint32_t> &candidates,
        const BackendSnapshot &backends,
        const server::Request &request) = 0;

    /**
     * Dispatch priority of @p request when every replica is saturated
     * and the balancer must queue (lower dispatches first; ties break
     * by arrival order). The default is arrival order itself: all
     * priorities equal.
     */
    virtual double
    queuePriority(const server::Request &request) const
    {
        (void)request;
        return 0.0;
    }
};

/** FCFS: primary replica, arrival-order queue. */
class FcfsPolicy : public SchedulingPolicy
{
  public:
    const char *name() const override { return "fcfs"; }
    std::size_t select(const std::vector<std::uint32_t> &candidates,
                       const BackendSnapshot &backends,
                       const server::Request &request) override;
};

/** Power-of-two-choices over the replica set by in-flight count. */
class PowerOfTwoPolicy : public SchedulingPolicy
{
  public:
    /** @param seed Run-derived stream for the two-replica sample. */
    explicit PowerOfTwoPolicy(std::uint64_t seed);

    const char *name() const override { return "p2c"; }
    std::size_t select(const std::vector<std::uint32_t> &candidates,
                       const BackendSnapshot &backends,
                       const server::Request &request) override;

  private:
    Rng rng;
};

/** Earliest-deadline-first dispatch from the balancer queue. */
class EdfPolicy : public SchedulingPolicy
{
  public:
    /** @param slackUs Latency budget added to each request's intended
     *  send to form its deadline. */
    explicit EdfPolicy(double slackUs);

    const char *name() const override { return "edf"; }
    std::size_t select(const std::vector<std::uint32_t> &candidates,
                       const BackendSnapshot &backends,
                       const server::Request &request) override;
    double queuePriority(const server::Request &request) const override;

  private:
    double slackUs;
};

/**
 * Build the policy for @p kind. @p seed feeds power-of-two's sampling
 * stream; @p edfSlackUs is EDF's deadline slack. Both are ignored by
 * policies that do not use them.
 */
std::unique_ptr<SchedulingPolicy> makePolicy(PolicyKind kind,
                                             std::uint64_t seed,
                                             double edfSlackUs);

} // namespace lb
} // namespace treadmill

#endif // TREADMILL_LB_POLICY_H_
