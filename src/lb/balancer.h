/**
 * @file
 * The load-balancer tier: a first-class component between the router
 * and the backend shards.
 *
 * The balancer is itself a server::Service, so anything that can talk
 * to a server can talk to a cluster: it hashes each request's key onto
 * the consistent-hash ring, collects the key's replica set, filters
 * out crashed backends (failover), and lets the configured
 * SchedulingPolicy pick the destination. When every replica is
 * saturated (maxInflightPerBackend) the request parks in the dispatch
 * queue, ordered by the policy's priority -- this queue is exactly the
 * "LB queueing" term the attribution studies separate from "backend N
 * got slow".
 *
 * The balancer never touches packets or machines itself: each backend
 * is an opaque forward callback (typically: uplink -> backend service
 * -> downlink) plus an optional health probe, so the lb module stays
 * below core in the layering DAG and is unit-testable with synthetic
 * backends.
 */

#ifndef TREADMILL_LB_BALANCER_H_
#define TREADMILL_LB_BALANCER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "lb/hash_ring.h"
#include "lb/policy.h"
#include "obs/metrics.h"
#include "server/request.h"
#include "sim/simulation.h"
#include "util/types.h"

namespace treadmill {
namespace lb {

/** Configuration of one balancer tier. */
struct BalancerParams {
    std::uint32_t backends = 0;    ///< Number of shards (required).
    std::uint32_t replication = 1; ///< Replicas per key (<= backends).
    std::uint32_t vnodesPerBackend = 128;
    /** Saturation cap per backend; 0 = never queue at the balancer. */
    std::uint32_t maxInflightPerBackend = 0;
    PolicyKind policy = PolicyKind::Fcfs;
    double edfSlackUs = 1000.0; ///< EDF latency budget.
    std::uint64_t seed = 1;     ///< Run seed (policy randomness).

    /** @throws ConfigError when inconsistent. */
    void validate() const;
};

/** Routes requests onto backend shards; see file comment. */
class LoadBalancer : public server::Service
{
  public:
    /** One attached backend shard. */
    struct Backend {
        /** Ship a request to the shard and eventually invoke the
         *  response callback (wire + service path). */
        std::function<void(server::RequestPtr, server::RespondFn)>
            forward;
        /** Liveness probe consulted at dispatch time; an empty
         *  function means always healthy. */
        std::function<bool()> healthy;
    };

    LoadBalancer(sim::Simulation &sim, const BalancerParams &params);

    LoadBalancer(const LoadBalancer &) = delete;
    LoadBalancer &operator=(const LoadBalancer &) = delete;

    /** Attach the next backend (ids assigned 0.. in call order);
     *  exactly params.backends calls, before the first receive(). */
    void addBackend(Backend backend);

    /**
     * Route @p request: ring lookup, replica walk, health filter,
     * policy selection; queue when all replicas are saturated; drop
     * (and count) when all replicas are down -- the client's timeout
     * machinery owns unanswered requests.
     */
    void receive(server::RequestPtr request,
                 server::RespondFn respond) override;

    /** @name Observers
     * @{
     */
    const HashRing &hashRing() const { return ring; }
    std::uint32_t backendCount() const { return params.backends; }
    std::uint64_t inflightOf(std::uint32_t b) const
    {
        return inflight[b];
    }
    std::uint64_t dispatchedTo(std::uint32_t b) const
    {
        return dispatchCount[b];
    }
    /** Requests parked in the dispatch queue right now. */
    std::size_t queueDepth() const { return queue.size(); }
    /** Requests that ever waited in the dispatch queue. */
    std::uint64_t queued() const { return queuedCount; }
    /** Requests dropped because every replica was down. */
    std::uint64_t unroutable() const { return unroutableCount; }
    /** Requests routed past a down primary to a later replica. */
    std::uint64_t failovers() const { return failoverCount; }
    const SchedulingPolicy &schedulingPolicy() const
    {
        return *policy;
    }
    /** @} */

  private:
    struct QueuedRequest {
        server::RequestPtr request;
        server::RespondFn respond;
        SimTime enqueuedAt = 0;
        /** Healthy replicas at enqueue time (re-filtered at pop). */
        std::vector<std::uint32_t> candidates;
    };

    /** True when @p b answers its health probe. */
    bool backendHealthy(std::uint32_t b) const;

    /** Hand @p request to backend @p b and arm the completion path. */
    void dispatch(std::uint32_t b, server::RequestPtr request,
                  server::RespondFn respond);

    /** A slot freed: dispatch queue heads while they fit. */
    void drainQueue();

    sim::Simulation &sim;
    BalancerParams params;
    HashRing ring;
    std::unique_ptr<SchedulingPolicy> policy;
    std::vector<Backend> hooks;

    std::vector<std::uint64_t> inflight;      ///< Per backend.
    std::vector<std::uint64_t> dispatchCount; ///< Per backend.
    /** Dispatch queue ordered by (policy priority, arrival seq). */
    std::map<std::pair<double, std::uint64_t>, QueuedRequest> queue;
    std::uint64_t nextQueueSeq = 0;
    std::uint64_t queuedCount = 0;
    std::uint64_t unroutableCount = 0;
    std::uint64_t failoverCount = 0;

    /** Scratch replica buffers (reused; dispatch allocates nothing
     *  once warm). */
    std::vector<std::uint32_t> scratchReplicas;
    std::vector<std::uint32_t> scratchHealthy;
    std::vector<std::uint32_t> scratchFree;

    /** @name Registry handles ("lb.*", resolved once)
     * @{
     */
    obs::Counter &dispatchedCounter;
    obs::Counter &queuedCounter;
    obs::Counter &unroutableCounter;
    obs::Counter &failoversCounter;
    obs::Gauge &queueDepthGauge;
    obs::Histogram &queueWaitHist;
    std::vector<obs::Counter *> backendDispatched;
    std::vector<obs::Gauge *> backendInflight;
    /** @} */
};

} // namespace lb
} // namespace treadmill

#endif // TREADMILL_LB_BALANCER_H_
