#include "lb/policy.h"

#include <utility>

#include "util/error.h"
#include "util/logging.h"
#include "util/strings.h"

namespace treadmill {
namespace lb {

namespace {

const std::vector<std::pair<PolicyKind, std::string>> &
kindNames()
{
    static const std::vector<std::pair<PolicyKind, std::string>> names{
        {PolicyKind::Fcfs, "fcfs"},
        {PolicyKind::PowerOfTwo, "p2c"},
        {PolicyKind::Edf, "edf"},
    };
    return names;
}

} // namespace

const std::string &
policyKindName(PolicyKind kind)
{
    for (const auto &entry : kindNames()) {
        if (entry.first == kind)
            return entry.second;
    }
    throw ConfigError("unknown LB policy kind");
}

PolicyKind
policyKindFromName(const std::string &name)
{
    for (const auto &entry : kindNames()) {
        if (entry.second == name)
            return entry.first;
    }
    throw ConfigError(
        strprintf("unknown LB policy \"%s\"", name.c_str()));
}

std::size_t
FcfsPolicy::select(const std::vector<std::uint32_t> &candidates,
                   const BackendSnapshot &, const server::Request &)
{
    TM_ASSERT(!candidates.empty(), "policy given no candidates");
    return 0;
}

PowerOfTwoPolicy::PowerOfTwoPolicy(std::uint64_t seed)
    : rng(Rng(0x1b2d2c701ce5ull).substream(seed))
{
}

std::size_t
PowerOfTwoPolicy::select(const std::vector<std::uint32_t> &candidates,
                         const BackendSnapshot &backends,
                         const server::Request &)
{
    TM_ASSERT(!candidates.empty(), "policy given no candidates");
    const std::size_t n = candidates.size();
    if (n == 1)
        return 0;
    // Sample two distinct candidate slots; ship to the emptier one.
    // Ties go to the first sample, which is itself uniform.
    const std::size_t a = rng.nextBelow(n);
    std::size_t b = rng.nextBelow(n - 1);
    if (b >= a)
        ++b;
    const std::uint64_t loadA = backends.inflight[candidates[a]];
    const std::uint64_t loadB = backends.inflight[candidates[b]];
    return loadB < loadA ? b : a;
}

EdfPolicy::EdfPolicy(double slackUs_) : slackUs(slackUs_)
{
    if (slackUs <= 0.0)
        throw ConfigError("EDF slack must be positive");
}

std::size_t
EdfPolicy::select(const std::vector<std::uint32_t> &candidates,
                  const BackendSnapshot &, const server::Request &)
{
    TM_ASSERT(!candidates.empty(), "policy given no candidates");
    return 0;
}

double
EdfPolicy::queuePriority(const server::Request &request) const
{
    // Deadline in simulated time: the instant the open-loop schedule
    // meant to issue the request plus the latency budget. Requests
    // already deep in their budget sort first.
    return static_cast<double>(request.intendedSend) +
           slackUs * 1000.0;
}

std::unique_ptr<SchedulingPolicy>
makePolicy(PolicyKind kind, std::uint64_t seed, double edfSlackUs)
{
    switch (kind) {
      case PolicyKind::Fcfs:
        return std::make_unique<FcfsPolicy>();
      case PolicyKind::PowerOfTwo:
        return std::make_unique<PowerOfTwoPolicy>(seed);
      case PolicyKind::Edf:
        return std::make_unique<EdfPolicy>(edfSlackUs);
    }
    throw ConfigError("unknown LB policy kind");
}

} // namespace lb
} // namespace treadmill
