/**
 * @file
 * Consistent-hash ring over backend shards.
 *
 * The ring is how the load-balancer tier turns a request key into a
 * backend (and, with replication, into an ordered replica set): each
 * backend owns many virtual points on a 64-bit circle, a key hashes to
 * a point, and the owner is the first backend point at or after it.
 * The classical guarantees hold and are property-tested: with enough
 * virtual nodes the key space splits near-evenly across N backends,
 * and removing one backend remaps only the keys that backend owned
 * (about 1/N of them) -- every other key keeps its owner, so a
 * failover never reshuffles the whole cluster's working set.
 *
 * Determinism: points come from SplitMix64 over (backend, vnode), so a
 * ring built from the same shape is bit-identical across runs and
 * platforms; no ambient entropy, no pointer hashing.
 */

#ifndef TREADMILL_LB_HASH_RING_H_
#define TREADMILL_LB_HASH_RING_H_

#include <cstdint>
#include <string_view>
#include <vector>

namespace treadmill {
namespace lb {

/** Consistent-hash ring with virtual nodes and replica walks. */
class HashRing
{
  public:
    /**
     * @param backends Number of backend shards (ids 0..backends-1).
     * @param vnodesPerBackend Virtual points per backend; more points
     *        tighten the balance bound at O(log) lookup cost.
     */
    explicit HashRing(std::uint32_t backends,
                      std::uint32_t vnodesPerBackend = 128);

    /** Stable 64-bit key hash (FNV-1a over the bytes). */
    static std::uint64_t hashKey(std::string_view key);

    /** Backend owning @p keyHash. */
    std::uint32_t lookup(std::uint64_t keyHash) const;

    /**
     * The first @p count distinct backends clockwise from @p keyHash
     * (the primary first), appended to @p out. Fewer are produced when
     * the ring has fewer live backends than @p count. @p out is
     * cleared first; reuse one vector across calls to avoid
     * allocation on the dispatch path.
     */
    void replicas(std::uint64_t keyHash, std::uint32_t count,
                  std::vector<std::uint32_t> &out) const;

    /**
     * Remove every point of backend @p id (a crashed or drained
     * shard); its keys fall to their clockwise successors.
     */
    void removeBackend(std::uint32_t id);

    /** Re-insert a backend previously removed; restores the exact
     *  point set the constructor gave it. */
    void addBackend(std::uint32_t id);

    /** Number of backends currently on the ring. */
    std::uint32_t liveBackends() const { return live; }

    /** Total virtual points currently on the ring. */
    std::size_t pointCount() const { return points.size(); }

  private:
    struct Point {
        std::uint64_t position;
        std::uint32_t backend;
    };

    /** Deterministic position of (backend, vnode). */
    static std::uint64_t pointPosition(std::uint32_t backend,
                                       std::uint32_t vnode);

    void rebuild();

    std::uint32_t totalBackends;
    std::uint32_t vnodes;
    std::uint32_t live;
    std::vector<bool> present;
    std::vector<Point> points; ///< Sorted by position.
};

} // namespace lb
} // namespace treadmill

#endif // TREADMILL_LB_HASH_RING_H_
