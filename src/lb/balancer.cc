#include "lb/balancer.h"

#include <algorithm>
#include <utility>

#include "util/error.h"
#include "util/logging.h"
#include "util/strings.h"

namespace treadmill {
namespace lb {

void
BalancerParams::validate() const
{
    if (backends == 0)
        throw ConfigError("balancer needs at least one backend");
    if (replication == 0)
        throw ConfigError("balancer replication must be >= 1");
    if (replication > backends)
        throw ConfigError(strprintf(
            "balancer replication %u exceeds backend count %u",
            replication, backends));
    if (vnodesPerBackend == 0)
        throw ConfigError("balancer needs at least one virtual node");
    if (policy == PolicyKind::Edf && edfSlackUs <= 0.0)
        throw ConfigError("EDF slack must be positive");
}

LoadBalancer::LoadBalancer(sim::Simulation &sim_,
                           const BalancerParams &params_)
    : sim(sim_), params(params_),
      ring((params_.validate(), params_.backends),
           params_.vnodesPerBackend),
      policy(makePolicy(params_.policy, params_.seed,
                        params_.edfSlackUs)),
      inflight(params_.backends, 0), dispatchCount(params_.backends, 0),
      dispatchedCounter(sim_.metrics().counter("lb.dispatched")),
      queuedCounter(sim_.metrics().counter("lb.queued")),
      unroutableCounter(sim_.metrics().counter("lb.unroutable")),
      failoversCounter(sim_.metrics().counter("lb.failovers")),
      queueDepthGauge(sim_.metrics().gauge("lb.queue_depth")),
      queueWaitHist(sim_.metrics().histogram("lb.queue_wait_us"))
{
    sim.metrics().claimScope("lb");
    hooks.reserve(params.backends);
    backendDispatched.reserve(params.backends);
    backendInflight.reserve(params.backends);
    for (std::uint32_t b = 0; b < params.backends; ++b) {
        const std::string prefix = strprintf("lb.backend%u.", b);
        backendDispatched.push_back(
            &sim.metrics().counter(prefix + "dispatched"));
        backendInflight.push_back(
            &sim.metrics().gauge(prefix + "inflight"));
    }
    scratchReplicas.reserve(params.backends);
    scratchHealthy.reserve(params.backends);
    scratchFree.reserve(params.backends);
}

void
LoadBalancer::addBackend(Backend backend)
{
    if (hooks.size() >= params.backends)
        throw ConfigError("more backends attached than configured");
    if (!backend.forward)
        throw ConfigError("backend needs a forward hook");
    hooks.push_back(std::move(backend));
}

bool
LoadBalancer::backendHealthy(std::uint32_t b) const
{
    const auto &probe = hooks[b].healthy;
    return !probe || probe();
}

// tmlint:hot-path-begin -- receive/dispatch/drainQueue run once per
// routed request; stamping and selection must stay alloc-free.
void
LoadBalancer::receive(server::RequestPtr request,
                      server::RespondFn respond)
{
    TM_ASSERT(hooks.size() == params.backends,
              "balancer used before all backends attached");
    request->lbArrival = sim.now();
    ring.replicas(HashRing::hashKey(request->key), params.replication,
                  scratchReplicas);
    scratchHealthy.clear();
    for (std::uint32_t b : scratchReplicas) {
        if (backendHealthy(b))
            scratchHealthy.push_back(b);
    }
    if (scratchHealthy.empty()) {
        // Every replica of this key is down. The request dies here;
        // the client's timeout/retry machinery owns unanswered
        // requests, and the counter makes the black hole visible.
        // The stamp lets span traces account the loss as failover
        // wait instead of an anonymous timeout.
        request->lbDropped = true;
        ++unroutableCount;
        unroutableCounter.add();
        return;
    }
    if (scratchHealthy.front() != scratchReplicas.front()) {
        ++failoverCount;
        failoversCounter.add();
        // Down replicas skipped ahead of the first healthy one: the
        // per-attempt failover hop count for span traces.
        std::uint32_t hops = 0;
        for (std::uint32_t b : scratchReplicas) {
            if (b == scratchHealthy.front())
                break;
            ++hops;
        }
        request->lbFailovers = hops;
    }

    if (params.maxInflightPerBackend > 0) {
        scratchFree.clear();
        for (std::uint32_t b : scratchHealthy) {
            if (inflight[b] < params.maxInflightPerBackend)
                scratchFree.push_back(b);
        }
        if (scratchFree.empty()) {
            // Every replica is saturated: park in the dispatch queue
            // under the policy's priority (ties by arrival order).
            ++queuedCount;
            queuedCounter.add();
            QueuedRequest entry;
            entry.enqueuedAt = sim.now();
            entry.candidates = scratchHealthy;
            entry.request = std::move(request);
            entry.respond = std::move(respond);
            queue.emplace(
                std::make_pair(policy->queuePriority(*entry.request),
                               nextQueueSeq++),
                std::move(entry));
            queueDepthGauge.set(static_cast<double>(queue.size()));
            return;
        }
        const BackendSnapshot snapshot{inflight.data(),
                                       inflight.size()};
        const std::size_t pick =
            policy->select(scratchFree, snapshot, *request);
        dispatch(scratchFree[pick], std::move(request),
                 std::move(respond));
        return;
    }

    const BackendSnapshot snapshot{inflight.data(), inflight.size()};
    const std::size_t pick =
        policy->select(scratchHealthy, snapshot, *request);
    dispatch(scratchHealthy[pick], std::move(request),
             std::move(respond));
}

void
LoadBalancer::dispatch(std::uint32_t b, server::RequestPtr request,
                       server::RespondFn respond)
{
    ++inflight[b];
    ++dispatchCount[b];
    dispatchedCounter.add();
    backendDispatched[b]->add();
    backendInflight[b]->set(static_cast<double>(inflight[b]));
    request->backendId = static_cast<std::int32_t>(b);
    request->lbDispatch = sim.now();
    auto &hook = hooks[b];
    hook.forward(
        std::move(request),
        [this, b, respond = std::move(respond)](
            const server::RequestPtr &response) {
            --inflight[b];
            backendInflight[b]->set(
                static_cast<double>(inflight[b]));
            // Reuse the freed slot at the earliest instant, then let
            // the response continue toward the client.
            drainQueue();
            respond(response);
        });
}

void
LoadBalancer::drainQueue()
{
    // Strict priority order: only the head may dispatch. If the head's
    // replicas are all still saturated (or down), later entries wait
    // behind it -- head-of-line blocking is part of what the balancer
    // queue models.
    while (!queue.empty()) {
        auto headIt = queue.begin();
        QueuedRequest &head = headIt->second;
        scratchFree.clear();
        for (std::uint32_t b : head.candidates) {
            if (backendHealthy(b) &&
                (params.maxInflightPerBackend == 0 ||
                 inflight[b] < params.maxInflightPerBackend))
                scratchFree.push_back(b);
        }
        if (scratchFree.empty())
            break;
        const BackendSnapshot snapshot{inflight.data(),
                                       inflight.size()};
        const std::size_t pick =
            policy->select(scratchFree, snapshot, *head.request);
        queueWaitHist.record(toMicros(sim.now() - head.enqueuedAt));
        server::RequestPtr request = std::move(head.request);
        server::RespondFn respond = std::move(head.respond);
        const std::uint32_t target = scratchFree[pick];
        queue.erase(headIt);
        queueDepthGauge.set(static_cast<double>(queue.size()));
        dispatch(target, std::move(request), std::move(respond));
    }
}
// tmlint:hot-path-end

} // namespace lb
} // namespace treadmill
