#include "lb/hash_ring.h"

#include <algorithm>

#include "util/error.h"
#include "util/logging.h"

namespace treadmill {
namespace lb {

namespace {

/** SplitMix64 finalizer: a cheap, well-mixed 64-bit permutation. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

} // namespace

HashRing::HashRing(std::uint32_t backends,
                   std::uint32_t vnodesPerBackend)
    : totalBackends(backends), vnodes(vnodesPerBackend), live(backends),
      present(backends, true)
{
    if (backends == 0)
        throw ConfigError("hash ring needs at least one backend");
    if (vnodesPerBackend == 0)
        throw ConfigError("hash ring needs at least one virtual node");
    rebuild();
}

std::uint64_t
HashRing::hashKey(std::string_view key)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (char c : key) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ull;
    }
    // FNV mixes low bits weakly; finalize so ring positions and key
    // hashes occupy the full 64-bit circle uniformly.
    return mix64(h);
}

std::uint64_t
HashRing::pointPosition(std::uint32_t backend, std::uint32_t vnode)
{
    return mix64((static_cast<std::uint64_t>(backend) << 32) | vnode);
}

void
HashRing::rebuild()
{
    points.clear();
    points.reserve(static_cast<std::size_t>(live) * vnodes);
    for (std::uint32_t b = 0; b < totalBackends; ++b) {
        if (!present[b])
            continue;
        for (std::uint32_t v = 0; v < vnodes; ++v)
            points.push_back({pointPosition(b, v), b});
    }
    std::sort(points.begin(), points.end(),
              [](const Point &a, const Point &b) {
                  // Position collisions across 64 bits are vanishingly
                  // rare, but break ties by backend id so the ring
                  // order never depends on sort stability.
                  return a.position != b.position
                             ? a.position < b.position
                             : a.backend < b.backend;
              });
}

std::uint32_t
HashRing::lookup(std::uint64_t keyHash) const
{
    TM_ASSERT(!points.empty(), "lookup on an empty ring");
    const auto it = std::lower_bound(
        points.begin(), points.end(), keyHash,
        [](const Point &p, std::uint64_t h) { return p.position < h; });
    return it != points.end() ? it->backend : points.front().backend;
}

void
HashRing::replicas(std::uint64_t keyHash, std::uint32_t count,
                   std::vector<std::uint32_t> &out) const
{
    out.clear();
    if (points.empty() || count == 0)
        return;
    const std::uint32_t want = std::min(count, live);
    auto it = std::lower_bound(
        points.begin(), points.end(), keyHash,
        [](const Point &p, std::uint64_t h) { return p.position < h; });
    if (it == points.end())
        it = points.begin();
    // Walk clockwise collecting distinct backends; at most one full
    // revolution (every live backend has a point on the ring).
    for (std::size_t steps = 0;
         steps < points.size() && out.size() < want; ++steps) {
        const std::uint32_t b = it->backend;
        if (std::find(out.begin(), out.end(), b) == out.end())
            out.push_back(b);
        ++it;
        if (it == points.end())
            it = points.begin();
    }
}

void
HashRing::removeBackend(std::uint32_t id)
{
    TM_ASSERT(id < totalBackends, "backend id out of range");
    if (!present[id])
        return;
    if (live == 1)
        throw ConfigError("cannot remove the last ring backend");
    present[id] = false;
    --live;
    rebuild();
}

void
HashRing::addBackend(std::uint32_t id)
{
    TM_ASSERT(id < totalBackends, "backend id out of range");
    if (present[id])
        return;
    present[id] = true;
    ++live;
    rebuild();
}

} // namespace lb
} // namespace treadmill
