#include "sim/simulation.h"

#include <string>

#include "util/logging.h"

namespace treadmill {
namespace sim {

Simulation::Simulation()
    : scheduledCounter(&registry.counter("sim.events_scheduled")),
      executedCounter(&registry.counter("sim.events_executed")),
      cancelledCounter(&registry.counter("sim.events_cancelled")),
      previousLogClock(detail::setSimClock(&currentTime))
{
}

Simulation::~Simulation()
{
    detail::setSimClock(previousLogClock);
}

EventId
Simulation::schedule(SimDuration delay, EventFn fn)
{
    scheduledCounter->add();
    return events.push(currentTime + delay, std::move(fn));
}

EventId
Simulation::scheduleAt(SimTime when, EventFn fn)
{
    TM_ASSERT(when >= currentTime, "cannot schedule an event in the past");
    scheduledCounter->add();
    return events.push(when, std::move(fn));
}

bool
Simulation::cancel(EventId id)
{
    const bool cancelled = events.cancel(id);
    if (cancelled)
        cancelledCounter->add();
    return cancelled;
}

void
Simulation::countEvent(const char *type)
{
    auto it = typeCounters.find(type);
    if (it == typeCounters.end())
        it = typeCounters.emplace(type, &registerEventCounter(type)).first;
    it->second->add();
}

obs::Counter &
Simulation::registerEventCounter(const char *type)
{
    // tmlint:cold: runs once per event type; steady state takes the
    // memoized typeCounters hit in countEvent()
    return registry.counter(std::string("sim.events.") + type);
}

bool
Simulation::step()
{
    if (stopping || events.empty())
        return false;
    SimTime when = 0;
    EventFn fn = events.pop(when);
    TM_ASSERT(when >= currentTime, "event queue went backwards in time");
    currentTime = when;
    ++executed;
    executedCounter->add();
    fn();
    return true;
}

void
Simulation::run()
{
    stopping = false;
    while (step()) {
    }
}

void
Simulation::runUntil(SimTime deadline)
{
    stopping = false;
    while (!stopping && !events.empty() && events.nextTime() < deadline) {
        step();
    }
    if (!stopping && currentTime < deadline)
        currentTime = deadline;
}

} // namespace sim
} // namespace treadmill
