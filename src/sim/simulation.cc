#include "sim/simulation.h"

#include "util/logging.h"

namespace treadmill {
namespace sim {

EventId
Simulation::schedule(SimDuration delay, EventFn fn)
{
    return events.push(currentTime + delay, std::move(fn));
}

EventId
Simulation::scheduleAt(SimTime when, EventFn fn)
{
    TM_ASSERT(when >= currentTime, "cannot schedule an event in the past");
    return events.push(when, std::move(fn));
}

bool
Simulation::step()
{
    if (stopping || events.empty())
        return false;
    SimTime when = 0;
    EventFn fn = events.pop(when);
    TM_ASSERT(when >= currentTime, "event queue went backwards in time");
    currentTime = when;
    ++executed;
    fn();
    return true;
}

void
Simulation::run()
{
    stopping = false;
    while (step()) {
    }
}

void
Simulation::runUntil(SimTime deadline)
{
    stopping = false;
    while (!stopping && !events.empty() && events.nextTime() < deadline) {
        step();
    }
    if (!stopping && currentTime < deadline)
        currentTime = deadline;
}

} // namespace sim
} // namespace treadmill
