/**
 * @file
 * The pending-event set for the discrete-event simulation engine.
 */

#ifndef TREADMILL_SIM_EVENT_QUEUE_H_
#define TREADMILL_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <unordered_set>
#include <vector>

#include "util/types.h"

namespace treadmill {
namespace sim {

/** Callback executed when an event fires. */
using EventFn = std::function<void()>;

/** Identifies a scheduled event so it can be cancelled. */
using EventId = std::uint64_t;

/**
 * A binary min-heap of timestamped events.
 *
 * Ties are broken by insertion sequence number, so two events scheduled
 * for the same instant always fire in the order they were scheduled.
 * This total order is what makes simulations reproducible. Cancellation
 * is lazy: cancelled entries stay in the heap and are skipped at pop.
 * Pending ids are tracked in a hash set so cancel() is O(1) amortized
 * -- per-request timeout events make cancellation a hot path, and a
 * heap scan per cancel would be quadratic at high load.
 */
class EventQueue
{
  public:
    EventQueue() = default;

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Insert an event firing at @p when; returns its id. */
    EventId push(SimTime when, EventFn fn);

    /** True when no live events remain. */
    bool empty() const { return liveCount == 0; }

    /** Number of live (non-cancelled) events. */
    std::size_t size() const { return liveCount; }

    /** Timestamp of the earliest live event. Queue must be non-empty. */
    SimTime nextTime();

    /**
     * Remove and return the earliest live event's callback.
     *
     * @param when Receives the event's timestamp.
     */
    EventFn pop(SimTime &when);

    /**
     * Cancel a pending event.
     *
     * @return true if the event was pending and is now cancelled;
     *         false if it already fired or was already cancelled.
     */
    bool cancel(EventId id);

    /** Drop every pending event. */
    void clear();

  private:
    struct Entry {
        SimTime when;
        std::uint64_t seq;
        EventId id;
        EventFn fn;
    };

    /** Min-heap order: earliest time first, then earliest sequence. */
    struct Later {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    /** Pop cancelled entries off the top of the heap. */
    void dropDeadTop();

    std::vector<Entry> heap;
    std::unordered_set<EventId> pendingIds; ///< Live (cancellable) ids.
    std::unordered_set<EventId> cancelledIds;
    std::uint64_t nextSeq = 0;
    EventId nextId = 1;
    std::size_t liveCount = 0;
};

} // namespace sim
} // namespace treadmill

#endif // TREADMILL_SIM_EVENT_QUEUE_H_
