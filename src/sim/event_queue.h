/**
 * @file
 * The pending-event set for the discrete-event simulation engine.
 */
// tmlint:hot-path -- every line here is on the steady-state event path
// (PR 4's zero-allocation property is enforced statically from here).

#ifndef TREADMILL_SIM_EVENT_QUEUE_H_
#define TREADMILL_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <vector>

#include "util/inline_function.h"
#include "util/types.h"

namespace treadmill {
namespace sim {

/**
 * Callback executed when an event fires.
 *
 * A small-buffer-optimized move-only callable: captures up to 48
 * bytes (a `this` pointer plus a pooled request handle or a couple of
 * ids -- every closure on the steady-state request path) are stored
 * inline, so scheduling an event performs no heap allocation. Larger
 * captures transparently fall back to the heap.
 */
using InlineEvent = util::InlineFunction<void(), 48>;
using EventFn = InlineEvent;

/** Identifies a scheduled event so it can be cancelled. */
using EventId = std::uint64_t;

/**
 * A 4-ary implicit min-heap of timestamped events with
 * generation-stamped slots.
 *
 * Ties are broken by insertion sequence number, so two events
 * scheduled for the same instant always fire in the order they were
 * scheduled. This (when, seq) total order is what makes simulations
 * reproducible, and it is identical to the order the previous
 * binary-heap implementation produced.
 *
 * Layout: the heap itself holds only 24-byte {when, seq, slot, gen}
 * entries (4-ary so sift-down touches one cache line of children per
 * level); callbacks live in a side table of recycled slots. An
 * EventId encodes (generation << 32 | slot); cancel() is a bounds
 * check plus a generation compare -- no hash lookups -- and bumps the
 * slot generation so the heap entry is recognized as dead when it
 * reaches the top. The callback is destroyed eagerly on cancel, so
 * captured state (e.g. a pooled request held by a timeout closure)
 * is released immediately rather than when the stale entry drains.
 */
class EventQueue
{
  public:
    EventQueue() = default;

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Insert an event firing at @p when; returns its (nonzero) id. */
    EventId push(SimTime when, EventFn fn);

    /** True when no live events remain. */
    bool empty() const { return liveCount == 0; }

    /** Number of live (non-cancelled) events. */
    std::size_t size() const { return liveCount; }

    /** Timestamp of the earliest live event. Queue must be non-empty. */
    SimTime nextTime();

    /**
     * Remove and return the earliest live event's callback.
     *
     * @param when Receives the event's timestamp.
     */
    EventFn pop(SimTime &when);

    /**
     * Cancel a pending event.
     *
     * The callback (and anything it captured) is destroyed before
     * this returns. @return true if the event was pending and is now
     * cancelled; false if it already fired or was already cancelled.
     */
    bool cancel(EventId id);

    /** Drop every pending event (callbacks destroyed immediately). */
    void clear();

  private:
    /** Heap entries are 24 bytes; the callback lives in slots[]. */
    struct HeapEntry {
        SimTime when;
        std::uint64_t seq;
        std::uint32_t slot;
        std::uint32_t gen;
    };

    struct Slot {
        EventFn fn;
        /** Matches the heap entry / id while live; bumped on retire.
         *  Starts at 1 and skips 0 on wrap so ids are never 0. */
        std::uint32_t gen = 1;
        /** kInUse while live, else next index in the free list. */
        std::uint32_t next = kInUse;
    };

    static constexpr std::uint32_t kNil = 0xffffffffu;
    static constexpr std::uint32_t kInUse = 0xfffffffeu;

    /** (when, seq) lexicographic order as one 128-bit compare: the
     *  composed key makes best-child selection branchless (cmov), and
     *  sift comparisons on a warm heap are branch-mispredict bound. */
    static unsigned __int128
    orderKey(const HeapEntry &e)
    {
        return (static_cast<unsigned __int128>(e.when) << 64) | e.seq;
    }

    static bool
    earlier(const HeapEntry &a, const HeapEntry &b)
    {
        return orderKey(a) < orderKey(b);
    }

    bool
    slotLive(const HeapEntry &e) const
    {
        const Slot &s = slots[e.slot];
        return s.next == kInUse && s.gen == e.gen;
    }

    std::uint32_t acquireSlot(EventFn fn);
    void retireSlot(std::uint32_t slot);
    void siftUp(std::size_t hole, HeapEntry entry);
    void siftDown(std::size_t hole, HeapEntry entry);
    void removeTop();
    /** Drop cancelled entries off the top of the heap. */
    void dropDeadTop();

    std::vector<HeapEntry> heap;
    std::vector<Slot> slots;
    std::uint32_t freeHead = kNil;
    std::uint64_t nextSeq = 0;
    std::size_t liveCount = 0;
};

} // namespace sim
} // namespace treadmill

#endif // TREADMILL_SIM_EVENT_QUEUE_H_
