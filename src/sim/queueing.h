/**
 * @file
 * Closed-form queueing-theory results used to validate the simulator.
 *
 * The paper's Finding 1 appeals to the M/M/1 number-in-system variance
 * rho/(1-rho)^2; we implement the standard M/M/1 and M/M/k formulas so
 * property tests can check the simulated server against theory.
 */

#ifndef TREADMILL_SIM_QUEUEING_H_
#define TREADMILL_SIM_QUEUEING_H_

#include <cstdint>

namespace treadmill {
namespace sim {

/** Analytic results for the M/M/1 queue at arrival rate lambda, service
 *  rate mu (both per second). */
class MM1
{
  public:
    MM1(double lambda, double mu);

    /** Offered load rho = lambda / mu; must be < 1 for stability. */
    double utilization() const { return rho; }

    /** Mean number of requests in the system. */
    double meanInSystem() const;

    /** Variance of the number in system: rho / (1-rho)^2. */
    double varianceInSystem() const;

    /** P(N = n): geometric distribution (1-rho) rho^n. */
    double probInSystem(std::uint64_t n) const;

    /** P(N <= n). */
    double cdfInSystem(std::uint64_t n) const;

    /** Mean sojourn (response) time, seconds. */
    double meanResponseTime() const;

    /** Mean waiting (queueing-only) time, seconds. */
    double meanWaitingTime() const;

    /**
     * The q-quantile of the sojourn-time distribution, seconds.
     * Response time is Exp(mu - lambda), so T_q = -ln(1-q)/(mu-lambda).
     */
    double responseTimeQuantile(double q) const;

  private:
    double lambda;
    double mu;
    double rho;
};

/** Analytic results for the M/M/k queue. */
class MMk
{
  public:
    MMk(double lambda, double mu, std::uint64_t servers);

    /** Per-server utilization rho = lambda / (k mu). */
    double utilization() const { return rho; }

    /** Erlang-C probability that an arrival must wait. */
    double probWait() const;

    /** Mean waiting time (excluding service), seconds. */
    double meanWaitingTime() const;

    /** Mean response time, seconds. */
    double meanResponseTime() const;

  private:
    double lambda;
    double mu;
    std::uint64_t k;
    double rho;
};

} // namespace sim
} // namespace treadmill

#endif // TREADMILL_SIM_QUEUEING_H_
