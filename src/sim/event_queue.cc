#include "sim/event_queue.h"

#include <algorithm>

#include "util/logging.h"

namespace treadmill {
namespace sim {

EventId
EventQueue::push(SimTime when, EventFn fn)
{
    const EventId id = nextId++;
    heap.push_back(Entry{when, nextSeq++, id, std::move(fn)});
    std::push_heap(heap.begin(), heap.end(), Later{});
    pendingIds.insert(id);
    ++liveCount;
    return id;
}

void
EventQueue::dropDeadTop()
{
    while (!heap.empty() && cancelledIds.count(heap.front().id) > 0) {
        cancelledIds.erase(heap.front().id);
        std::pop_heap(heap.begin(), heap.end(), Later{});
        heap.pop_back();
    }
}

SimTime
EventQueue::nextTime()
{
    dropDeadTop();
    TM_ASSERT(!heap.empty(), "nextTime() on an empty event queue");
    return heap.front().when;
}

EventFn
EventQueue::pop(SimTime &when)
{
    dropDeadTop();
    TM_ASSERT(!heap.empty(), "pop() on an empty event queue");
    std::pop_heap(heap.begin(), heap.end(), Later{});
    Entry top = std::move(heap.back());
    heap.pop_back();
    pendingIds.erase(top.id);
    --liveCount;
    when = top.when;
    return std::move(top.fn);
}

bool
EventQueue::cancel(EventId id)
{
    // pendingIds holds exactly the live ids, so one hash erase decides
    // whether the event is still cancellable -- no heap scan.
    if (pendingIds.erase(id) == 0)
        return false;
    cancelledIds.insert(id);
    --liveCount;
    return true;
}

void
EventQueue::clear()
{
    heap.clear();
    pendingIds.clear();
    cancelledIds.clear();
    liveCount = 0;
}

} // namespace sim
} // namespace treadmill
