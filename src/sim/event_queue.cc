#include "sim/event_queue.h"

#include <algorithm>

#include "util/logging.h"

namespace treadmill {
namespace sim {

EventId
EventQueue::push(SimTime when, EventFn fn)
{
    const EventId id = nextId++;
    heap.push_back(Entry{when, nextSeq++, id, std::move(fn)});
    std::push_heap(heap.begin(), heap.end(), Later{});
    ++liveCount;
    return id;
}

void
EventQueue::dropDeadTop()
{
    while (!heap.empty() && cancelledIds.count(heap.front().id) > 0) {
        cancelledIds.erase(heap.front().id);
        std::pop_heap(heap.begin(), heap.end(), Later{});
        heap.pop_back();
    }
}

SimTime
EventQueue::nextTime()
{
    dropDeadTop();
    TM_ASSERT(!heap.empty(), "nextTime() on an empty event queue");
    return heap.front().when;
}

EventFn
EventQueue::pop(SimTime &when)
{
    dropDeadTop();
    TM_ASSERT(!heap.empty(), "pop() on an empty event queue");
    std::pop_heap(heap.begin(), heap.end(), Later{});
    Entry top = std::move(heap.back());
    heap.pop_back();
    --liveCount;
    when = top.when;
    return std::move(top.fn);
}

bool
EventQueue::cancel(EventId id)
{
    if (id == 0 || id >= nextId)
        return false;
    if (cancelledIds.count(id) > 0)
        return false;
    // Only mark ids that are actually still pending.
    const bool pending = std::any_of(
        heap.begin(), heap.end(),
        [id](const Entry &e) { return e.id == id; });
    if (!pending)
        return false;
    cancelledIds.insert(id);
    --liveCount;
    return true;
}

void
EventQueue::clear()
{
    heap.clear();
    cancelledIds.clear();
    liveCount = 0;
}

} // namespace sim
} // namespace treadmill
