// tmlint:hot-path -- push/pop/cancel run once per simulated event;
// nothing here may allocate, throw, or touch std::function.
#include "sim/event_queue.h"

#include <algorithm>

#include "util/logging.h"

namespace treadmill {
namespace sim {

std::uint32_t
EventQueue::acquireSlot(EventFn fn)
{
    std::uint32_t idx;
    if (freeHead != kNil) {
        idx = freeHead;
        freeHead = slots[idx].next;
        slots[idx].next = kInUse;
    } else {
        idx = static_cast<std::uint32_t>(slots.size());
        slots.emplace_back();
    }
    slots[idx].fn = std::move(fn);
    return idx;
}

void
EventQueue::retireSlot(std::uint32_t slot)
{
    Slot &s = slots[slot];
    // Bumping the generation invalidates the outstanding id and the
    // heap entry in one store. Skip 0 on wrap so ids stay nonzero.
    if (++s.gen == 0)
        s.gen = 1;
    s.next = freeHead;
    freeHead = slot;
}

EventId
EventQueue::push(SimTime when, EventFn fn)
{
    const std::uint32_t slot = acquireSlot(std::move(fn));
    const HeapEntry entry{when, nextSeq++, slot, slots[slot].gen};
    heap.push_back(entry); // Placeholder; siftUp writes the real path.
    siftUp(heap.size() - 1, entry);
    ++liveCount;
    return (static_cast<EventId>(slots[slot].gen) << 32) | slot;
}

void
EventQueue::siftUp(std::size_t hole, HeapEntry entry)
{
    while (hole > 0) {
        const std::size_t parent = (hole - 1) >> 2;
        if (!earlier(entry, heap[parent]))
            break;
        heap[hole] = heap[parent];
        hole = parent;
    }
    heap[hole] = entry;
}

void
EventQueue::siftDown(std::size_t hole, HeapEntry entry)
{
    const std::size_t n = heap.size();
    const unsigned __int128 entryKey = orderKey(entry);
    for (;;) {
        const std::size_t first = 4 * hole + 1;
        if (first >= n)
            break;
        // Select the earliest child with conditional moves: the
        // winner of each comparison is data-dependent, so branching
        // here mispredicts roughly half the time.
        std::size_t best = first;
        unsigned __int128 bestKey = orderKey(heap[first]);
        const std::size_t last = std::min(first + 4, n);
        for (std::size_t c = first + 1; c < last; ++c) {
            const unsigned __int128 k = orderKey(heap[c]);
            const bool lt = k < bestKey;
            best = lt ? c : best;
            bestKey = lt ? k : bestKey;
        }
        if (bestKey >= entryKey)
            break;
        heap[hole] = heap[best];
        hole = best;
    }
    heap[hole] = entry;
}

void
EventQueue::removeTop()
{
    const HeapEntry tail = heap.back();
    heap.pop_back();
    if (!heap.empty())
        siftDown(0, tail);
}

void
EventQueue::dropDeadTop()
{
    while (!heap.empty() && !slotLive(heap.front()))
        removeTop();
}

SimTime
EventQueue::nextTime()
{
    dropDeadTop();
    TM_ASSERT(!heap.empty(), "nextTime() on an empty event queue");
    return heap.front().when;
}

EventFn
EventQueue::pop(SimTime &when)
{
    dropDeadTop();
    TM_ASSERT(!heap.empty(), "pop() on an empty event queue");
    const HeapEntry top = heap.front();
    when = top.when;
    // Moving out leaves the slot's callback empty, so no extra
    // destroy is needed before the slot is recycled.
    EventFn fn = std::move(slots[top.slot].fn);
    retireSlot(top.slot);
    --liveCount;
    removeTop();
    return fn;
}

bool
EventQueue::cancel(EventId id)
{
    const std::uint32_t slot = static_cast<std::uint32_t>(id);
    const std::uint32_t gen = static_cast<std::uint32_t>(id >> 32);
    if (slot >= slots.size())
        return false;
    Slot &s = slots[slot];
    if (s.next != kInUse || s.gen != gen)
        return false;
    // Destroy the callback now: a cancelled timeout must not keep its
    // captured request alive until the stale heap entry drains.
    s.fn = EventFn();
    retireSlot(slot);
    --liveCount;
    // The heap entry stays behind and is dropped lazily when it
    // reaches the top -- same cost model as the old hash-set scheme,
    // without the two hash operations per push/pop.
    return true;
}

void
EventQueue::clear()
{
    for (std::uint32_t i = 0; i < slots.size(); ++i) {
        if (slots[i].next == kInUse) {
            slots[i].fn = EventFn();
            retireSlot(i);
        }
    }
    // Generations survive clear(), so ids issued before the clear can
    // never accidentally cancel events pushed afterwards.
    heap.clear();
    liveCount = 0;
}

} // namespace sim
} // namespace treadmill
