#include "sim/queueing.h"

#include <cmath>

#include "util/error.h"

namespace treadmill {
namespace sim {

MM1::MM1(double lambda_, double mu_)
    : lambda(lambda_), mu(mu_), rho(lambda_ / mu_)
{
    if (!(lambda_ > 0.0) || !(mu_ > 0.0))
        throw ConfigError("M/M/1 rates must be positive");
    if (!(rho < 1.0))
        throw ConfigError("M/M/1 requires lambda < mu for stability");
}

double
MM1::meanInSystem() const
{
    return rho / (1.0 - rho);
}

double
MM1::varianceInSystem() const
{
    return rho / ((1.0 - rho) * (1.0 - rho));
}

double
MM1::probInSystem(std::uint64_t n) const
{
    return (1.0 - rho) * std::pow(rho, static_cast<double>(n));
}

double
MM1::cdfInSystem(std::uint64_t n) const
{
    return 1.0 - std::pow(rho, static_cast<double>(n) + 1.0);
}

double
MM1::meanResponseTime() const
{
    return 1.0 / (mu - lambda);
}

double
MM1::meanWaitingTime() const
{
    return rho / (mu - lambda);
}

double
MM1::responseTimeQuantile(double q) const
{
    if (!(q >= 0.0) || !(q < 1.0))
        throw ConfigError("quantile must lie in [0, 1)");
    return -std::log(1.0 - q) / (mu - lambda);
}

MMk::MMk(double lambda_, double mu_, std::uint64_t servers)
    : lambda(lambda_), mu(mu_), k(servers),
      rho(lambda_ / (mu_ * static_cast<double>(servers)))
{
    if (!(lambda_ > 0.0) || !(mu_ > 0.0) || servers == 0)
        throw ConfigError("M/M/k rates and server count must be positive");
    if (!(rho < 1.0))
        throw ConfigError("M/M/k requires lambda < k*mu for stability");
}

double
MMk::probWait() const
{
    // Erlang-C formula; computed with running factorial terms.
    const double a = lambda / mu; // offered load in Erlangs
    double term = 1.0;            // a^n / n!
    double sum = 1.0;             // sum over n = 0..k-1
    for (std::uint64_t n = 1; n < k; ++n) {
        term *= a / static_cast<double>(n);
        sum += term;
    }
    term *= a / static_cast<double>(k); // a^k / k!
    const double last = term / (1.0 - rho);
    return last / (sum + last);
}

double
MMk::meanWaitingTime() const
{
    return probWait() / (static_cast<double>(k) * mu - lambda);
}

double
MMk::meanResponseTime() const
{
    return meanWaitingTime() + 1.0 / mu;
}

} // namespace sim
} // namespace treadmill
