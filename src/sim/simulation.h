/**
 * @file
 * The discrete-event simulation driver.
 *
 * All Treadmill experiments run inside a Simulation: load-tester control
 * loops, network links, NIC interrupt handling, and server worker threads
 * are all expressed as events against a shared virtual clock.
 */

#ifndef TREADMILL_SIM_SIMULATION_H_
#define TREADMILL_SIM_SIMULATION_H_

#include <cstdint>
#include <unordered_map>

#include "obs/metrics.h"
#include "sim/event_queue.h"
#include "util/types.h"

namespace treadmill {
namespace sim {

/**
 * Owns the virtual clock and the pending-event set and dispatches events
 * in timestamp order.
 *
 * Each Simulation also owns a MetricsRegistry: every component built on
 * this simulation registers its metrics here, so telemetry is
 * seed-isolated exactly like the rest of the mutable run state and the
 * parallel-runner determinism invariant (DESIGN.md §5) holds with
 * metrics enabled. While alive, the Simulation is this thread's
 * logging clock: log lines carry the simulated timestamp.
 */
class Simulation
{
  public:
    Simulation();
    ~Simulation();

    Simulation(const Simulation &) = delete;
    Simulation &operator=(const Simulation &) = delete;

    /** Current virtual time. */
    SimTime now() const { return currentTime; }

    /** Schedule @p fn to run @p delay after the current time. */
    EventId schedule(SimDuration delay, EventFn fn);

    /** Schedule @p fn at the absolute virtual time @p when (>= now). */
    EventId scheduleAt(SimTime when, EventFn fn);

    /** Cancel a previously scheduled event. */
    bool cancel(EventId id);

    /**
     * Execute the earliest pending event.
     *
     * @return false when no events remain or stop() was requested.
     */
    bool step();

    /** Run until the event set is exhausted or stop() is called. */
    void run();

    /**
     * Run until virtual time reaches @p deadline.
     *
     * Events at exactly @p deadline do not fire; the clock is left at
     * @p deadline (or at the stop/exhaustion point, whichever is first).
     */
    void runUntil(SimTime deadline);

    /** Request that run()/runUntil() return after the current event. */
    void stop() { stopping = true; }

    /** True if stop() was called since the last run. */
    bool stopped() const { return stopping; }

    /** Number of events dispatched so far. */
    std::uint64_t eventsExecuted() const { return executed; }

    /** Number of events currently pending. */
    std::size_t pendingEvents() const { return events.size(); }

    /** This simulation's metrics registry. */
    obs::MetricsRegistry &metrics() { return registry; }
    const obs::MetricsRegistry &metrics() const { return registry; }

    /**
     * Count one scheduled event of the named type ("client.send",
     * "net.delivery") under "sim.events.<type>". The per-type counter
     * is memoized by the literal's address, so call sites must pass
     * string literals (or otherwise stable strings).
     */
    void countEvent(const char *type);

  private:
    /** Slow path of countEvent(): first sighting of an event type. */
    obs::Counter &registerEventCounter(const char *type);

    EventQueue events;
    SimTime currentTime = 0;
    std::uint64_t executed = 0;
    bool stopping = false;

    obs::MetricsRegistry registry;
    obs::Counter *scheduledCounter = nullptr;
    obs::Counter *executedCounter = nullptr;
    obs::Counter *cancelledCounter = nullptr;
    /** Per-type event counters, memoized by literal address. */
    std::unordered_map<const char *, obs::Counter *> typeCounters;
    /** The logging clock this Simulation replaced, restored on exit. */
    const std::uint64_t *previousLogClock = nullptr;
};

} // namespace sim
} // namespace treadmill

#endif // TREADMILL_SIM_SIMULATION_H_
