/**
 * @file
 * The discrete-event simulation driver.
 *
 * All Treadmill experiments run inside a Simulation: load-tester control
 * loops, network links, NIC interrupt handling, and server worker threads
 * are all expressed as events against a shared virtual clock.
 */

#ifndef TREADMILL_SIM_SIMULATION_H_
#define TREADMILL_SIM_SIMULATION_H_

#include <cstdint>

#include "sim/event_queue.h"
#include "util/types.h"

namespace treadmill {
namespace sim {

/**
 * Owns the virtual clock and the pending-event set and dispatches events
 * in timestamp order.
 */
class Simulation
{
  public:
    Simulation() = default;

    Simulation(const Simulation &) = delete;
    Simulation &operator=(const Simulation &) = delete;

    /** Current virtual time. */
    SimTime now() const { return currentTime; }

    /** Schedule @p fn to run @p delay after the current time. */
    EventId schedule(SimDuration delay, EventFn fn);

    /** Schedule @p fn at the absolute virtual time @p when (>= now). */
    EventId scheduleAt(SimTime when, EventFn fn);

    /** Cancel a previously scheduled event. */
    bool cancel(EventId id) { return events.cancel(id); }

    /**
     * Execute the earliest pending event.
     *
     * @return false when no events remain or stop() was requested.
     */
    bool step();

    /** Run until the event set is exhausted or stop() is called. */
    void run();

    /**
     * Run until virtual time reaches @p deadline.
     *
     * Events at exactly @p deadline do not fire; the clock is left at
     * @p deadline (or at the stop/exhaustion point, whichever is first).
     */
    void runUntil(SimTime deadline);

    /** Request that run()/runUntil() return after the current event. */
    void stop() { stopping = true; }

    /** True if stop() was called since the last run. */
    bool stopped() const { return stopping; }

    /** Number of events dispatched so far. */
    std::uint64_t eventsExecuted() const { return executed; }

    /** Number of events currently pending. */
    std::size_t pendingEvents() const { return events.size(); }

  private:
    EventQueue events;
    SimTime currentTime = 0;
    std::uint64_t executed = 0;
    bool stopping = false;
};

} // namespace sim
} // namespace treadmill

#endif // TREADMILL_SIM_SIMULATION_H_
