#include "regress/pseudo_r2.h"

#include <cmath>

#include "stats/summary.h"
#include "util/error.h"

namespace treadmill {
namespace regress {

double
quantileErrorWeight(double tau, double err)
{
    return err < 0.0 ? (1.0 - tau) : tau;
}

double
pseudoR2(const Vec &observed, const Vec &predicted, double tau)
{
    if (observed.size() != predicted.size())
        throw NumericalError("pseudo-R2 shape mismatch");
    if (observed.empty())
        throw NumericalError("pseudo-R2 of an empty sample");
    if (!(tau > 0.0 && tau < 1.0))
        throw NumericalError("tau must lie strictly in (0, 1)");

    // Best constant model: the empirical tau-quantile of y
    // (the minimizer of the weighted absolute error).
    const double constant = stats::quantile(observed, tau);

    double modelError = 0.0;
    double constError = 0.0;
    for (std::size_t i = 0; i < observed.size(); ++i) {
        const double errModel = observed[i] - predicted[i];
        const double errConst = observed[i] - constant;
        modelError +=
            quantileErrorWeight(tau, errModel) * std::fabs(errModel);
        constError +=
            quantileErrorWeight(tau, errConst) * std::fabs(errConst);
    }
    if (constError == 0.0)
        return modelError == 0.0 ? 1.0 : 0.0;
    return 1.0 - modelError / constError;
}

double
pseudoR2(const Matrix &x, const Vec &y, const Vec &beta, double tau)
{
    return pseudoR2(y, x.multiply(beta), tau);
}

} // namespace regress
} // namespace treadmill
