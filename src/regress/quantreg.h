/**
 * @file
 * Quantile regression (Koenker) via the Hunter-Lange MM algorithm.
 *
 * Estimates the coefficients c(tau) of Equation 1 in the paper:
 * minimizing the pinball (check) loss, which weights underestimation
 * by tau and overestimation by (1 - tau). No distributional assumption
 * is made about the residuals -- the property that makes quantile
 * regression the right tool for tail-latency attribution where ANOVA
 * is not.
 */

#ifndef TREADMILL_REGRESS_QUANTREG_H_
#define TREADMILL_REGRESS_QUANTREG_H_

#include <cstdint>

#include "regress/matrix.h"

namespace treadmill {
namespace regress {

/** Pinball (check) loss of residual @p err at quantile @p tau. */
double pinballLoss(double tau, double err);

/** Total pinball loss of predictions X beta against y. */
double totalPinballLoss(const Matrix &x, const Vec &y, const Vec &beta,
                        double tau);

/** Solver controls. */
struct QuantRegOptions {
    std::uint64_t maxIterations = 200;
    /** Stop when the relative loss improvement falls below this. */
    double tolerance = 1e-8;
    /** Initial smoothing epsilon (shrinks geometrically). */
    double epsilonStart = 1.0;
    double epsilonFloor = 1e-9;
    /** Ridge applied to the weighted normal equations. */
    double ridge = 1e-8;
};

/** Fit outcome. */
struct QuantRegResult {
    double tau = 0.5;
    Vec coefficients;
    double loss = 0.0; ///< Total pinball loss at the solution.
    std::uint64_t iterations = 0;
    bool converged = false;

    /** Predicted tau-quantile for covariate row @p xRow. */
    double predict(const Vec &xRow) const;
};

/**
 * Fit the tau-th conditional quantile of y given X.
 *
 * Hunter-Lange MM: each iteration solves a weighted least-squares
 * surrogate that majorizes the (epsilon-smoothed) pinball loss;
 * epsilon anneals toward zero so the solution approaches the exact
 * check-loss minimizer.
 *
 * @throws NumericalError on shape mismatch or degenerate design.
 */
QuantRegResult fitQuantile(const Matrix &x, const Vec &y, double tau,
                           const QuantRegOptions &options = {});

} // namespace regress
} // namespace treadmill

#endif // TREADMILL_REGRESS_QUANTREG_H_
