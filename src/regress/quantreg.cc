#include "regress/quantreg.h"

#include <algorithm>
#include <cmath>

#include "regress/ols.h"
#include "util/error.h"
#include "util/logging.h"

namespace treadmill {
namespace regress {

double
pinballLoss(double tau, double err)
{
    return err >= 0.0 ? tau * err : (tau - 1.0) * err;
}

double
totalPinballLoss(const Matrix &x, const Vec &y, const Vec &beta,
                 double tau)
{
    const Vec predicted = x.multiply(beta);
    double loss = 0.0;
    for (std::size_t i = 0; i < y.size(); ++i)
        loss += pinballLoss(tau, y[i] - predicted[i]);
    return loss;
}

double
QuantRegResult::predict(const Vec &xRow) const
{
    return dot(xRow, coefficients);
}

QuantRegResult
fitQuantile(const Matrix &x, const Vec &y, double tau,
            const QuantRegOptions &options)
{
    if (y.size() != x.rows())
        throw NumericalError("quantile regression shape mismatch");
    if (!(tau > 0.0 && tau < 1.0))
        throw NumericalError("tau must lie strictly in (0, 1)");
    if (x.rows() < x.cols())
        throw NumericalError(
            "quantile regression needs rows >= columns");

    QuantRegResult result;
    result.tau = tau;

    // Start from the least-squares solution.
    result.coefficients = fitOls(x, y, options.ridge).coefficients;
    double loss = totalPinballLoss(x, y, result.coefficients, tau);

    // Hunter-Lange MM with annealed smoothing: the surrogate for
    // rho_tau(r) at r0 is  r^2 / (4 max(|r0|, eps)) + (tau - 1/2) r
    // (+ const), whose minimizer solves a weighted least-squares
    // system with linear term (tau - 1/2) X^T 1.
    double epsilon = options.epsilonStart;
    Vec weights(y.size());
    Vec ones(y.size(), 1.0);
    Vec linear = x.transposeMultiply(ones);
    for (double &v : linear)
        v *= (tau - 0.5);

    for (std::uint64_t it = 0; it < options.maxIterations; ++it) {
        const Vec predicted = x.multiply(result.coefficients);
        for (std::size_t i = 0; i < y.size(); ++i) {
            const double r = std::fabs(y[i] - predicted[i]);
            weights[i] = 0.5 / std::max(r, epsilon);
        }

        const Vec next =
            solveWeightedLs(x, y, weights, linear, options.ridge);
        const double nextLoss = totalPinballLoss(x, y, next, tau);
        ++result.iterations;

        const double improvement =
            loss > 0.0 ? (loss - nextLoss) / loss : 0.0;
        if (nextLoss <= loss) {
            result.coefficients = next;
            loss = nextLoss;
        }

        if (improvement < options.tolerance) {
            if (epsilon <= options.epsilonFloor) {
                result.converged = true;
                break;
            }
            epsilon = std::max(options.epsilonFloor, epsilon * 0.1);
        }
    }

    result.loss = loss;
    return result;
}

} // namespace regress
} // namespace treadmill
