/**
 * @file
 * Dense matrix/vector algebra for the regression layer.
 *
 * Small and self-contained: the design matrices here are N x 16 (480
 * experiments by 16 factorial terms), so simple dense routines with
 * partial pivoting are exactly the right tool.
 */

#ifndef TREADMILL_REGRESS_MATRIX_H_
#define TREADMILL_REGRESS_MATRIX_H_

#include <cstddef>
#include <vector>

namespace treadmill {
namespace regress {

/** Column vector. */
using Vec = std::vector<double>;

/** Row-major dense matrix. */
class Matrix
{
  public:
    /** Zero matrix of the given shape. */
    Matrix(std::size_t rows, std::size_t cols);

    Matrix(const Matrix &) = default;
    Matrix(Matrix &&) noexcept = default;
    Matrix &operator=(const Matrix &) = default;
    Matrix &operator=(Matrix &&) noexcept = default;

    std::size_t rows() const { return nRows; }
    std::size_t cols() const { return nCols; }

    double &at(std::size_t r, std::size_t c);
    double at(std::size_t r, std::size_t c) const;

    /** n x n identity. */
    static Matrix identity(std::size_t n);

    /** This matrix transposed. */
    Matrix transpose() const;

    /** Matrix product this * other. */
    Matrix multiply(const Matrix &other) const;

    /** Matrix-vector product this * v. */
    Vec multiply(const Vec &v) const;

    /** X^T X (Gram matrix), computed directly. */
    Matrix gram() const;

    /** X^T v. */
    Vec transposeMultiply(const Vec &v) const;

    /** Copy of row r. */
    Vec row(std::size_t r) const;

    /** Build a matrix from the given rows of this one (with
     *  repetition), for bootstrap resampling. */
    Matrix selectRows(const std::vector<std::size_t> &indices) const;

  private:
    std::size_t nRows;
    std::size_t nCols;
    std::vector<double> data;
};

/** Dot product. */
double dot(const Vec &a, const Vec &b);

/**
 * Solve A x = b for symmetric positive-definite A via Cholesky.
 * @throws NumericalError when A is not positive definite.
 */
Vec solveCholesky(const Matrix &a, const Vec &b);

/**
 * Solve A x = b via Gaussian elimination with partial pivoting.
 * @throws NumericalError when A is singular.
 */
Vec solveLinearSystem(Matrix a, Vec b);

/**
 * Inverse of symmetric positive-definite A via Cholesky.
 * @throws NumericalError when A is not positive definite.
 */
Matrix invertSpd(const Matrix &a);

} // namespace regress
} // namespace treadmill

#endif // TREADMILL_REGRESS_MATRIX_H_
