/**
 * @file
 * Goodness-of-fit for quantile regression: the paper's pseudo-R^2.
 *
 * Implements Equations 2-4 exactly: the weighted absolute prediction
 * error of the fitted model, normalized by the error of the best
 * constant model (the empirical tau-quantile of y). 1 means a perfect
 * fit; 0 means the covariates explain nothing beyond a constant.
 */

#ifndef TREADMILL_REGRESS_PSEUDO_R2_H_
#define TREADMILL_REGRESS_PSEUDO_R2_H_

#include "regress/matrix.h"

namespace treadmill {
namespace regress {

/** The error weight of Equation 4: (1 - tau) for overestimation
 *  (err < 0), tau for underestimation (err >= 0). */
double quantileErrorWeight(double tau, double err);

/**
 * Pseudo-R^2 of predictions against observations at quantile tau
 * (Equation 2). @p predicted and @p observed must be the same size.
 */
double pseudoR2(const Vec &observed, const Vec &predicted, double tau);

/**
 * Pseudo-R^2 of a fitted coefficient vector over a design matrix.
 */
double pseudoR2(const Matrix &x, const Vec &y, const Vec &beta,
                double tau);

} // namespace regress
} // namespace treadmill

#endif // TREADMILL_REGRESS_PSEUDO_R2_H_
