/**
 * @file
 * Ordinary least squares and classical inference.
 *
 * OLS is the engine inside the quantile-regression IRLS loop and the
 * ANOVA-style baseline the paper contrasts with quantile regression
 * (S IV-A): it attributes variance of the *mean*, assumes normal
 * residuals, and is shown to be the wrong tool for tails.
 */

#ifndef TREADMILL_REGRESS_OLS_H_
#define TREADMILL_REGRESS_OLS_H_

#include <vector>

#include "regress/matrix.h"

namespace treadmill {
namespace regress {

/** Result of a least-squares fit. */
struct OlsResult {
    Vec coefficients;
    Vec residuals;
    Vec standardErrors; ///< Classical (X^T X)^-1 sigma^2 errors.
    Vec tStatistics;
    Vec pValues;        ///< Two-sided, normal approximation.
    double sigma2 = 0.0; ///< Residual variance estimate.
    double rSquared = 0.0;
    double totalSumSquares = 0.0;
    double residualSumSquares = 0.0;
};

/**
 * Fit y = X beta + e by least squares.
 *
 * @param x Design matrix (rows = observations).
 * @param y Response (size = rows).
 * @param ridge Small diagonal regularizer for near-singular designs.
 * @throws NumericalError on shape mismatch or singular design.
 */
OlsResult fitOls(const Matrix &x, const Vec &y, double ridge = 0.0);

/**
 * Weighted least squares: minimize sum w_i (y_i - x_i beta)^2 with an
 * extra linear term c^T beta (used by the quantile-regression MM
 * iteration). Returns only the coefficient vector.
 *
 * Solves (X^T W X) beta = X^T W y + c.
 */
Vec solveWeightedLs(const Matrix &x, const Vec &y, const Vec &weights,
                    const Vec &linearTerm, double ridge = 0.0);

/** Per-term ANOVA-style variance attribution from an OLS fit: the
 *  incremental sum of squares explained by each column, in order. */
Vec sequentialSumOfSquares(const Matrix &x, const Vec &y);

} // namespace regress
} // namespace treadmill

#endif // TREADMILL_REGRESS_OLS_H_
