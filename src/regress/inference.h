/**
 * @file
 * Bootstrap inference for quantile-regression coefficients.
 *
 * Quantile regression has no closed-form covariance free of density
 * assumptions, so Treadmill reports Table IV's Std. Err and p-value
 * columns from a nonparametric bootstrap over experiments: resample
 * rows with replacement, refit, and read the spread of each
 * coefficient across replicates. p-values use the normal
 * approximation z = estimate / SE.
 */

#ifndef TREADMILL_REGRESS_INFERENCE_H_
#define TREADMILL_REGRESS_INFERENCE_H_

#include <cstdint>
#include <vector>

#include "regress/matrix.h"
#include "regress/quantreg.h"
#include "util/rng.h"

namespace treadmill {
namespace regress {

/** Point estimate with bootstrap uncertainty for one coefficient. */
struct CoefficientInference {
    double estimate = 0.0;
    double standardError = 0.0;
    double pValue = 1.0;
    double ciLow = 0.0;  ///< Percentile CI at the given confidence.
    double ciHigh = 0.0;
};

/** Inference for every coefficient of one quantile fit. */
struct QuantRegInference {
    QuantRegResult fit; ///< Fit on the full data.
    std::vector<CoefficientInference> coefficients;
    std::size_t bootstrapReplicates = 0;
};

/**
 * Fit the tau-quantile and bootstrap its coefficient uncertainty.
 *
 * @param x Design matrix.
 * @param y Responses.
 * @param tau Quantile order.
 * @param replicates Bootstrap resamples (>= 2).
 * @param rng Randomness for resampling.
 * @param confidence Two-sided CI level.
 * @param options Inner solver controls.
 */
QuantRegInference
bootstrapQuantReg(const Matrix &x, const Vec &y, double tau,
                  std::size_t replicates, Rng &rng,
                  double confidence = 0.95,
                  const QuantRegOptions &options = {});

} // namespace regress
} // namespace treadmill

#endif // TREADMILL_REGRESS_INFERENCE_H_
