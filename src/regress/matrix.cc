#include "regress/matrix.h"

#include <cmath>

#include "util/error.h"
#include "util/logging.h"

namespace treadmill {
namespace regress {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : nRows(rows), nCols(cols), data(rows * cols, 0.0)
{
    if (rows == 0 || cols == 0)
        throw NumericalError("matrix dimensions must be positive");
}

double &
Matrix::at(std::size_t r, std::size_t c)
{
    TM_ASSERT(r < nRows && c < nCols, "matrix index out of range");
    return data[r * nCols + c];
}

double
Matrix::at(std::size_t r, std::size_t c) const
{
    TM_ASSERT(r < nRows && c < nCols, "matrix index out of range");
    return data[r * nCols + c];
}

Matrix
Matrix::identity(std::size_t n)
{
    Matrix m(n, n);
    for (std::size_t i = 0; i < n; ++i)
        m.at(i, i) = 1.0;
    return m;
}

Matrix
Matrix::transpose() const
{
    Matrix t(nCols, nRows);
    for (std::size_t r = 0; r < nRows; ++r)
        for (std::size_t c = 0; c < nCols; ++c)
            t.at(c, r) = at(r, c);
    return t;
}

Matrix
Matrix::multiply(const Matrix &other) const
{
    if (nCols != other.nRows)
        throw NumericalError("matrix product shape mismatch");
    Matrix out(nRows, other.nCols);
    for (std::size_t r = 0; r < nRows; ++r) {
        for (std::size_t k = 0; k < nCols; ++k) {
            const double v = at(r, k);
            if (v == 0.0)
                continue;
            for (std::size_t c = 0; c < other.nCols; ++c)
                out.at(r, c) += v * other.at(k, c);
        }
    }
    return out;
}

Vec
Matrix::multiply(const Vec &v) const
{
    if (v.size() != nCols)
        throw NumericalError("matrix-vector shape mismatch");
    Vec out(nRows, 0.0);
    for (std::size_t r = 0; r < nRows; ++r) {
        double sum = 0.0;
        for (std::size_t c = 0; c < nCols; ++c)
            sum += at(r, c) * v[c];
        out[r] = sum;
    }
    return out;
}

Matrix
Matrix::gram() const
{
    Matrix g(nCols, nCols);
    for (std::size_t r = 0; r < nRows; ++r) {
        for (std::size_t i = 0; i < nCols; ++i) {
            const double vi = at(r, i);
            if (vi == 0.0)
                continue;
            for (std::size_t j = i; j < nCols; ++j)
                g.at(i, j) += vi * at(r, j);
        }
    }
    for (std::size_t i = 0; i < nCols; ++i)
        for (std::size_t j = 0; j < i; ++j)
            g.at(i, j) = g.at(j, i);
    return g;
}

Vec
Matrix::transposeMultiply(const Vec &v) const
{
    if (v.size() != nRows)
        throw NumericalError("transpose-multiply shape mismatch");
    Vec out(nCols, 0.0);
    for (std::size_t r = 0; r < nRows; ++r) {
        const double w = v[r];
        if (w == 0.0)
            continue;
        for (std::size_t c = 0; c < nCols; ++c)
            out[c] += at(r, c) * w;
    }
    return out;
}

Vec
Matrix::row(std::size_t r) const
{
    TM_ASSERT(r < nRows, "row index out of range");
    Vec out(nCols);
    for (std::size_t c = 0; c < nCols; ++c)
        out[c] = at(r, c);
    return out;
}

Matrix
Matrix::selectRows(const std::vector<std::size_t> &indices) const
{
    if (indices.empty())
        throw NumericalError("selectRows needs at least one row");
    Matrix out(indices.size(), nCols);
    for (std::size_t i = 0; i < indices.size(); ++i) {
        TM_ASSERT(indices[i] < nRows, "selected row out of range");
        for (std::size_t c = 0; c < nCols; ++c)
            out.at(i, c) = at(indices[i], c);
    }
    return out;
}

double
dot(const Vec &a, const Vec &b)
{
    TM_ASSERT(a.size() == b.size(), "dot-product shape mismatch");
    double sum = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i)
        sum += a[i] * b[i];
    return sum;
}

namespace {

/** Cholesky factor L (lower) with A = L L^T. */
Matrix
choleskyFactor(const Matrix &a)
{
    if (a.rows() != a.cols())
        throw NumericalError("Cholesky needs a square matrix");
    const std::size_t n = a.rows();
    Matrix l(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j <= i; ++j) {
            double sum = a.at(i, j);
            for (std::size_t k = 0; k < j; ++k)
                sum -= l.at(i, k) * l.at(j, k);
            if (i == j) {
                // Relative tolerance: an exactly collinear design
                // loses all pivot mass up to rounding noise.
                const double floor =
                    1e-12 * std::max(1.0, std::fabs(a.at(i, i)));
                if (sum <= floor)
                    throw NumericalError(
                        "matrix is not positive definite");
                l.at(i, i) = std::sqrt(sum);
            } else {
                l.at(i, j) = sum / l.at(j, j);
            }
        }
    }
    return l;
}

} // namespace

Vec
solveCholesky(const Matrix &a, const Vec &b)
{
    const Matrix l = choleskyFactor(a);
    const std::size_t n = a.rows();
    if (b.size() != n)
        throw NumericalError("solve shape mismatch");

    // Forward substitution: L z = b.
    Vec z(n);
    for (std::size_t i = 0; i < n; ++i) {
        double sum = b[i];
        for (std::size_t k = 0; k < i; ++k)
            sum -= l.at(i, k) * z[k];
        z[i] = sum / l.at(i, i);
    }
    // Back substitution: L^T x = z.
    Vec x(n);
    for (std::size_t ii = n; ii-- > 0;) {
        double sum = z[ii];
        for (std::size_t k = ii + 1; k < n; ++k)
            sum -= l.at(k, ii) * x[k];
        x[ii] = sum / l.at(ii, ii);
    }
    return x;
}

Vec
solveLinearSystem(Matrix a, Vec b)
{
    if (a.rows() != a.cols())
        throw NumericalError("solve needs a square matrix");
    const std::size_t n = a.rows();
    if (b.size() != n)
        throw NumericalError("solve shape mismatch");

    for (std::size_t col = 0; col < n; ++col) {
        // Partial pivot.
        std::size_t pivot = col;
        double best = std::fabs(a.at(col, col));
        for (std::size_t r = col + 1; r < n; ++r) {
            if (std::fabs(a.at(r, col)) > best) {
                best = std::fabs(a.at(r, col));
                pivot = r;
            }
        }
        if (best < 1e-300)
            throw NumericalError("singular matrix in solve");
        if (pivot != col) {
            for (std::size_t c = 0; c < n; ++c)
                std::swap(a.at(col, c), a.at(pivot, c));
            std::swap(b[col], b[pivot]);
        }
        // Eliminate below.
        for (std::size_t r = col + 1; r < n; ++r) {
            const double f = a.at(r, col) / a.at(col, col);
            if (f == 0.0)
                continue;
            for (std::size_t c = col; c < n; ++c)
                a.at(r, c) -= f * a.at(col, c);
            b[r] -= f * b[col];
        }
    }
    // Back substitution.
    Vec x(n);
    for (std::size_t ii = n; ii-- > 0;) {
        double sum = b[ii];
        for (std::size_t c = ii + 1; c < n; ++c)
            sum -= a.at(ii, c) * x[c];
        x[ii] = sum / a.at(ii, ii);
    }
    return x;
}

Matrix
invertSpd(const Matrix &a)
{
    const std::size_t n = a.rows();
    Matrix inv(n, n);
    for (std::size_t c = 0; c < n; ++c) {
        Vec e(n, 0.0);
        e[c] = 1.0;
        const Vec col = solveCholesky(a, e);
        for (std::size_t r = 0; r < n; ++r)
            inv.at(r, c) = col[r];
    }
    return inv;
}

} // namespace regress
} // namespace treadmill
