/**
 * @file
 * 2-level full-factorial experiment design with interactions.
 *
 * Builds the model of the paper's Equation 1: an intercept, every
 * factor in isolation, and the products of every factor subset
 * ("numa:turbo", ..., "numa:turbo:dvfs:nic"). Also implements the
 * paper's pre-fit data treatment: the symmetric 0.01-sd perturbation
 * of the dummy variables that keeps the numerical optimizer out of
 * degenerate corners (S V-A).
 */

#ifndef TREADMILL_REGRESS_DESIGN_H_
#define TREADMILL_REGRESS_DESIGN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "regress/matrix.h"
#include "util/rng.h"

namespace treadmill {
namespace regress {

/** The term structure of a 2^k factorial model with interactions. */
class FactorialDesign
{
  public:
    /**
     * @param factorNames One name per factor, in canonical order.
     * @throws ConfigError when empty or absurdly large (> 16 factors).
     */
    explicit FactorialDesign(std::vector<std::string> factorNames);

    /** Number of base factors k. */
    std::size_t factorCount() const { return names.size(); }

    /** Number of model terms: 2^k (intercept + all subsets). */
    std::size_t termCount() const { return std::size_t{1} << names.size(); }

    /**
     * Name of term @p t: "(Intercept)" for t = 0, otherwise factor
     * names joined by ':' ("numa:dvfs").
     */
    std::string termName(std::size_t t) const;

    /** All term names in canonical order. */
    std::vector<std::string> termNames() const;

    /**
     * Index of the main-effect term of factor @p factorIdx (the
     * singleton subset {factorIdx}); lets callers rank factors by
     * their isolated coefficient without re-deriving the subset
     * encoding.
     */
    std::size_t mainEffectTerm(std::size_t factorIdx) const;

    /**
     * Design-matrix row for one observation's factor levels:
     * row[t] = product of levels of the factors in term t.
     */
    Vec designRow(const std::vector<double> &levels) const;

    /**
     * Full design matrix for a set of observations.
     *
     * @param observations One level vector per experiment.
     */
    Matrix designMatrix(
        const std::vector<std::vector<double>> &observations) const;

    /**
     * The paper's symmetric perturbation: add N(0, sd) noise to every
     * non-intercept entry of the design matrix.
     */
    static Matrix perturb(const Matrix &x, double sd, Rng &rng);

  private:
    std::vector<std::string> names;
};

} // namespace regress
} // namespace treadmill

#endif // TREADMILL_REGRESS_DESIGN_H_
