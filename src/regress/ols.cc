#include "regress/ols.h"

#include <cmath>

#include "stats/hypothesis.h"
#include "stats/summary.h"
#include "util/error.h"

namespace treadmill {
namespace regress {

OlsResult
fitOls(const Matrix &x, const Vec &y, double ridge)
{
    if (y.size() != x.rows())
        throw NumericalError("OLS shape mismatch");
    if (x.rows() < x.cols())
        throw NumericalError("OLS needs at least as many rows as cols");

    Matrix gram = x.gram();
    for (std::size_t i = 0; i < gram.rows(); ++i)
        gram.at(i, i) += ridge;
    const Vec xty = x.transposeMultiply(y);

    OlsResult result;
    result.coefficients = solveCholesky(gram, xty);

    const Vec predicted = x.multiply(result.coefficients);
    result.residuals.resize(y.size());
    double rss = 0.0;
    for (std::size_t i = 0; i < y.size(); ++i) {
        result.residuals[i] = y[i] - predicted[i];
        rss += result.residuals[i] * result.residuals[i];
    }
    result.residualSumSquares = rss;

    const double meanY = stats::mean(y);
    double tss = 0.0;
    for (double v : y)
        tss += (v - meanY) * (v - meanY);
    result.totalSumSquares = tss;
    result.rSquared = tss > 0.0 ? 1.0 - rss / tss : 0.0;

    const auto n = static_cast<double>(x.rows());
    const auto p = static_cast<double>(x.cols());
    const double dof = n - p;
    result.sigma2 = dof > 0.0 ? rss / dof : 0.0;

    const Matrix cov = invertSpd(gram);
    result.standardErrors.resize(x.cols());
    result.tStatistics.resize(x.cols());
    result.pValues.resize(x.cols());
    for (std::size_t j = 0; j < x.cols(); ++j) {
        const double se = std::sqrt(
            std::max(0.0, cov.at(j, j) * result.sigma2));
        result.standardErrors[j] = se;
        if (se > 0.0) {
            result.tStatistics[j] = result.coefficients[j] / se;
            result.pValues[j] =
                stats::twoSidedPValue(result.tStatistics[j]);
        } else {
            result.tStatistics[j] =
                result.coefficients[j] == 0.0 ? 0.0 : INFINITY;
            result.pValues[j] =
                result.coefficients[j] == 0.0 ? 1.0 : 0.0;
        }
    }
    return result;
}

Vec
solveWeightedLs(const Matrix &x, const Vec &y, const Vec &weights,
                const Vec &linearTerm, double ridge)
{
    if (y.size() != x.rows() || weights.size() != x.rows())
        throw NumericalError("weighted LS shape mismatch");
    if (linearTerm.size() != x.cols())
        throw NumericalError("weighted LS linear-term shape mismatch");

    const std::size_t p = x.cols();
    Matrix xtwx(p, p);
    Vec xtwy(p, 0.0);
    for (std::size_t r = 0; r < x.rows(); ++r) {
        const double w = weights[r];
        if (w == 0.0)
            continue;
        for (std::size_t i = 0; i < p; ++i) {
            const double xi = x.at(r, i);
            if (xi == 0.0)
                continue;
            xtwy[i] += w * xi * y[r];
            for (std::size_t j = i; j < p; ++j)
                xtwx.at(i, j) += w * xi * x.at(r, j);
        }
    }
    for (std::size_t i = 0; i < p; ++i) {
        xtwx.at(i, i) += ridge;
        for (std::size_t j = 0; j < i; ++j)
            xtwx.at(i, j) = xtwx.at(j, i);
        xtwy[i] += linearTerm[i];
    }
    return solveCholesky(xtwx, xtwy);
}

Vec
sequentialSumOfSquares(const Matrix &x, const Vec &y)
{
    Vec contributions(x.cols(), 0.0);
    double previousRss = 0.0;
    {
        // Null model: intercept-free zero prediction if the first
        // column is not constant; use total sum of squares about 0.
        for (double v : y)
            previousRss += v * v;
    }
    for (std::size_t k = 1; k <= x.cols(); ++k) {
        Matrix sub(x.rows(), k);
        for (std::size_t r = 0; r < x.rows(); ++r)
            for (std::size_t c = 0; c < k; ++c)
                sub.at(r, c) = x.at(r, c);
        const OlsResult fit = fitOls(sub, y, 1e-9);
        contributions[k - 1] = previousRss - fit.residualSumSquares;
        previousRss = fit.residualSumSquares;
    }
    return contributions;
}

} // namespace regress
} // namespace treadmill
