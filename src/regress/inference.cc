#include "regress/inference.h"

#include <algorithm>
#include <cmath>

#include "stats/hypothesis.h"
#include "stats/summary.h"
#include "util/error.h"

namespace treadmill {
namespace regress {

QuantRegInference
bootstrapQuantReg(const Matrix &x, const Vec &y, double tau,
                  std::size_t replicates, Rng &rng, double confidence,
                  const QuantRegOptions &options)
{
    if (replicates < 2)
        throw ConfigError("bootstrap needs at least 2 replicates");

    QuantRegInference result;
    result.fit = fitQuantile(x, y, tau, options);
    result.bootstrapReplicates = replicates;

    const std::size_t p = x.cols();
    const std::size_t n = x.rows();

    // Collect coefficient replicates; skip the rare resample whose
    // design is degenerate (all rows from one factor cell).
    std::vector<Vec> replicateCoeffs(p);
    std::vector<std::size_t> indices(n);
    for (std::size_t b = 0; b < replicates; ++b) {
        for (auto &idx : indices)
            idx = static_cast<std::size_t>(rng.nextBelow(n));
        Vec yb(n);
        for (std::size_t i = 0; i < n; ++i)
            yb[i] = y[indices[i]];
        try {
            const Matrix xb = x.selectRows(indices);
            const QuantRegResult fit =
                fitQuantile(xb, yb, tau, options);
            for (std::size_t j = 0; j < p; ++j)
                replicateCoeffs[j].push_back(fit.coefficients[j]);
        } catch (const NumericalError &) {
            continue;
        }
    }
    if (replicateCoeffs[0].size() < 2)
        throw NumericalError(
            "bootstrap produced too few successful refits");

    const double alpha = 1.0 - confidence;
    result.coefficients.resize(p);
    for (std::size_t j = 0; j < p; ++j) {
        CoefficientInference &ci = result.coefficients[j];
        ci.estimate = result.fit.coefficients[j];
        ci.standardError = stats::stddev(replicateCoeffs[j]);
        std::sort(replicateCoeffs[j].begin(), replicateCoeffs[j].end());
        ci.ciLow = stats::quantileSorted(replicateCoeffs[j], alpha / 2);
        ci.ciHigh =
            stats::quantileSorted(replicateCoeffs[j], 1.0 - alpha / 2);
        if (ci.standardError > 0.0) {
            ci.pValue = stats::twoSidedPValue(ci.estimate /
                                              ci.standardError);
        } else {
            ci.pValue = ci.estimate == 0.0 ? 1.0 : 0.0;
        }
    }
    return result;
}

} // namespace regress
} // namespace treadmill
