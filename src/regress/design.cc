#include "regress/design.h"

#include "util/error.h"
#include "util/logging.h"
#include "util/random_variates.h"
#include "util/strings.h"

namespace treadmill {
namespace regress {

FactorialDesign::FactorialDesign(std::vector<std::string> factorNames)
    : names(std::move(factorNames))
{
    if (names.empty())
        throw ConfigError("factorial design needs at least one factor");
    if (names.size() > 16)
        throw ConfigError("factorial design limited to 16 factors");
}

std::string
FactorialDesign::termName(std::size_t t) const
{
    TM_ASSERT(t < termCount(), "term index out of range");
    if (t == 0)
        return "(Intercept)";
    std::vector<std::string> parts;
    for (std::size_t f = 0; f < names.size(); ++f) {
        if (t & (std::size_t{1} << f))
            parts.push_back(names[f]);
    }
    return join(parts, ":");
}

std::vector<std::string>
FactorialDesign::termNames() const
{
    std::vector<std::string> out;
    out.reserve(termCount());
    for (std::size_t t = 0; t < termCount(); ++t)
        out.push_back(termName(t));
    return out;
}

std::size_t
FactorialDesign::mainEffectTerm(std::size_t factorIdx) const
{
    TM_ASSERT(factorIdx < names.size(), "factor index out of range");
    return std::size_t{1} << factorIdx;
}

Vec
FactorialDesign::designRow(const std::vector<double> &levels) const
{
    if (levels.size() != names.size())
        throw NumericalError("level vector size mismatch");
    Vec row(termCount(), 1.0);
    for (std::size_t t = 1; t < termCount(); ++t) {
        double value = 1.0;
        for (std::size_t f = 0; f < names.size(); ++f) {
            if (t & (std::size_t{1} << f))
                value *= levels[f];
        }
        row[t] = value;
    }
    return row;
}

Matrix
FactorialDesign::designMatrix(
    const std::vector<std::vector<double>> &observations) const
{
    if (observations.empty())
        throw NumericalError("design matrix needs observations");
    Matrix x(observations.size(), termCount());
    for (std::size_t r = 0; r < observations.size(); ++r) {
        const Vec row = designRow(observations[r]);
        for (std::size_t c = 0; c < row.size(); ++c)
            x.at(r, c) = row[c];
    }
    return x;
}

Matrix
FactorialDesign::perturb(const Matrix &x, double sd, Rng &rng)
{
    if (!(sd >= 0.0))
        throw ConfigError("perturbation sd must be non-negative");
    Matrix out = x;
    if (sd == 0.0)
        return out;
    Normal noise(0.0, sd);
    for (std::size_t r = 0; r < out.rows(); ++r) {
        // Column 0 is the intercept; leave it exact.
        for (std::size_t c = 1; c < out.cols(); ++c)
            out.at(r, c) += noise.sample(rng);
    }
    return out;
}

} // namespace regress
} // namespace treadmill
