#include "exec/thread_pool.h"

#include <algorithm>

namespace treadmill {
namespace exec {

ThreadPool::ThreadPool(unsigned threads)
{
    const unsigned n = std::max(1u, threads);
    workers.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    wait();
    {
        std::lock_guard<std::mutex> lock(mutex);
        stopping = true;
    }
    wake.notify_all();
    for (std::thread &worker : workers)
        worker.join();
}

void
ThreadPool::post(Task task)
{
    {
        std::lock_guard<std::mutex> lock(mutex);
        queue.push_back(std::move(task));
        ++inFlight;
    }
    wake.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mutex);
    idle.wait(lock, [this] { return inFlight == 0; });
}

unsigned
ThreadPool::hardwareThreads()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        Task task;
        {
            std::unique_lock<std::mutex> lock(mutex);
            wake.wait(lock,
                      [this] { return stopping || !queue.empty(); });
            if (queue.empty())
                return; // stopping, nothing left to drain
            task = std::move(queue.front());
            queue.pop_front();
        }
        task();
        {
            std::lock_guard<std::mutex> lock(mutex);
            --inFlight;
            if (inFlight == 0)
                idle.notify_all();
        }
    }
}

} // namespace exec
} // namespace treadmill
