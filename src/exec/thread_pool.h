/**
 * @file
 * A fixed-size worker-thread pool for fanning out independent jobs.
 *
 * The attribution study runs hundreds of seed-isolated experiments;
 * ThreadPool is the substrate that executes them concurrently. The
 * design is deliberately minimal -- a shared FIFO task queue drained
 * by a fixed set of workers, no work stealing -- because every task
 * the simulator submits is coarse (a complete experiment or a
 * permutation test), so queue contention is negligible next to task
 * runtime.
 *
 * Tasks must not throw: higher layers (parallelFor, ParallelRunner)
 * wrap user callables and carry exceptions back to the submitting
 * thread via std::exception_ptr.
 */

#ifndef TREADMILL_EXEC_THREAD_POOL_H_
#define TREADMILL_EXEC_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace treadmill {
namespace exec {

/** A task submitted to the pool. Must not throw. */
using Task = std::function<void()>;

/**
 * Fixed set of worker threads draining a shared FIFO task queue.
 *
 * The destructor waits for every posted task to finish before joining
 * the workers, so a pool can be scoped to one fan-out region.
 */
class ThreadPool
{
  public:
    /**
     * Start @p threads workers.
     *
     * @param threads Worker count; clamped up to 1.
     */
    explicit ThreadPool(unsigned threads);

    /** Drains outstanding tasks, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue a task. Thread-safe. */
    void post(Task task);

    /** Block until every task posted so far has completed. */
    void wait();

    /** Number of worker threads. */
    unsigned threadCount() const
    {
        return static_cast<unsigned>(workers.size());
    }

    /** Detected hardware concurrency (at least 1). */
    static unsigned hardwareThreads();

  private:
    void workerLoop();

    std::vector<std::thread> workers;
    std::deque<Task> queue; // tm:guarded_by(mutex)
    mutable std::mutex mutex;
    std::condition_variable wake; ///< Signals workers: task or shutdown.
    std::condition_variable idle; ///< Signals wait(): all tasks done.
    std::size_t inFlight = 0; ///< Queued or executing. tm:guarded_by(mutex)
    bool stopping = false;    // tm:guarded_by(mutex)
};

} // namespace exec
} // namespace treadmill

#endif // TREADMILL_EXEC_THREAD_POOL_H_
