/**
 * @file
 * Index-space fan-out over a ThreadPool.
 *
 * parallelFor(par, n, fn) runs fn(0) ... fn(n-1) across worker
 * threads. The contract that makes this safe for simulations is
 * *seed isolation*: each index must touch only state it owns (its own
 * Simulation, Rng, collectors), so that execution order cannot change
 * results. Under that contract parallelFor is bit-exact with the
 * serial loop, because results are addressed by index, never by
 * completion order.
 *
 * A Parallelism of 1 runs the plain serial loop on the calling thread
 * with no pool, locks, or atomics -- the legacy path, kept as the
 * baseline the determinism suite compares against.
 */

#ifndef TREADMILL_EXEC_PARALLEL_FOR_H_
#define TREADMILL_EXEC_PARALLEL_FOR_H_

#include <atomic>
#include <cstddef>
#include <exception>
#include <mutex>

#include "exec/thread_pool.h"

namespace treadmill {
namespace exec {

/**
 * The parallelism knob threaded through every sweep-shaped API.
 *
 * threads == 0 (the default) resolves to the hardware concurrency;
 * threads == 1 selects the legacy serial path; any other value pins
 * the worker count explicitly.
 */
struct Parallelism {
    unsigned threads = 0;

    /** The worker count this knob resolves to (>= 1). */
    unsigned
    resolve() const
    {
        return threads == 0 ? ThreadPool::hardwareThreads() : threads;
    }

    /** The legacy single-threaded path. */
    static Parallelism
    serial()
    {
        return Parallelism{1};
    }
};

/**
 * Run @p fn over the index range [0, n) using up to par.resolve()
 * worker threads.
 *
 * Indices are claimed from a shared counter, so tasks of uneven cost
 * balance naturally. If any invocation throws, remaining indices are
 * abandoned (already-started ones finish) and the first captured
 * exception is rethrown on the calling thread after all workers stop.
 *
 * @param par Parallelism knob; resolve() == 1 runs serially inline.
 * @param n   Number of indices; 0 is a no-op.
 * @param fn  Callable invoked as fn(std::size_t index).
 */
template <typename Fn>
void
parallelFor(const Parallelism &par, std::size_t n, Fn &&fn)
{
    if (n == 0)
        return;

    const std::size_t lanes =
        std::min<std::size_t>(par.resolve(), n);
    if (lanes <= 1) {
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    std::atomic<std::size_t> next{0};
    std::atomic<bool> failed{false};
    std::exception_ptr error;
    std::mutex errorMutex;

    {
        ThreadPool pool(static_cast<unsigned>(lanes));
        for (std::size_t lane = 0; lane < lanes; ++lane) {
            pool.post([&] {
                while (!failed.load(std::memory_order_relaxed)) {
                    const std::size_t i =
                        next.fetch_add(1, std::memory_order_relaxed);
                    if (i >= n)
                        return;
                    try {
                        fn(i);
                    } catch (...) {
                        std::lock_guard<std::mutex> lock(errorMutex);
                        if (!error)
                            error = std::current_exception();
                        failed.store(true, std::memory_order_relaxed);
                        return;
                    }
                }
            });
        }
        pool.wait();
    }
    if (error)
        std::rethrow_exception(error);
}

} // namespace exec
} // namespace treadmill

#endif // TREADMILL_EXEC_PARALLEL_FOR_H_
