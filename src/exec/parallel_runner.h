/**
 * @file
 * ParallelRunner: index-addressed result collection with progress.
 *
 * Where parallelFor() is a bare fan-out, ParallelRunner is the shape
 * the experiment sweeps need: n tasks, each producing a value, placed
 * into output slot i regardless of which worker finished first, plus
 * a progress callback reporting runs completed / total, wall-clock
 * elapsed, and accumulated task-defined work units (the experiment
 * layer reports simulated seconds, giving an achieved sim-time
 * throughput).
 */
// tmlint:allow-file(no-wallclock): progress ETA is operator-facing wall
// time; it never feeds simulated timestamps or measured results.

#ifndef TREADMILL_EXEC_PARALLEL_RUNNER_H_
#define TREADMILL_EXEC_PARALLEL_RUNNER_H_

#include <chrono>
#include <cstddef>
#include <functional>
#include <mutex>
#include <type_traits>
#include <utility>
#include <vector>

#include "exec/parallel_for.h"

namespace treadmill {
namespace exec {

/** Snapshot passed to the progress callback after each completed task. */
struct Progress {
    std::size_t completed = 0; ///< Tasks finished so far.
    std::size_t total = 0;     ///< Tasks in this run() call.
    double wallSeconds = 0.0;  ///< Wall-clock since run() started.
    /** Task-defined units completed (e.g. simulated seconds). */
    double workUnits = 0.0;

    /** Work units per wall-clock second (0 until the clock advances). */
    double
    throughput() const
    {
        return wallSeconds > 0.0 ? workUnits / wallSeconds : 0.0;
    }
};

/** Observes sweep progress; invoked serially (never concurrently). */
using ProgressFn = std::function<void(const Progress &)>;

/**
 * Fans index-addressed tasks over a thread pool.
 *
 * Determinism: out[i] is always task(i)'s value, and each task must
 * derive all randomness from its own index/seed, so the output vector
 * is identical for every Parallelism setting.
 */
class ParallelRunner
{
  public:
    explicit ParallelRunner(Parallelism par_ = {}) : par(par_) {}

    /** Install a progress observer (pass {} to remove). */
    void
    onProgress(ProgressFn fn)
    {
        progressFn = std::move(fn);
    }

    /** The knob this runner fans out with. */
    const Parallelism &
    parallelism() const
    {
        return par;
    }

    /**
     * Run @p task over [0, n); slot i of the result receives task(i).
     *
     * @param task   Callable: std::size_t -> T (T default-constructible).
     * @param workOf Callable: const T & -> double, the work units the
     *               task represents (reported via Progress::workUnits).
     */
    template <typename Task, typename WorkOf>
    auto
    run(std::size_t n, Task &&task, WorkOf &&workOf)
        -> std::vector<std::decay_t<std::invoke_result_t<Task &,
                                                         std::size_t>>>
    {
        using T =
            std::decay_t<std::invoke_result_t<Task &, std::size_t>>;
        std::vector<T> out(n);
        const auto start = std::chrono::steady_clock::now();

        std::mutex progressMutex;
        Progress snapshot;
        snapshot.total = n;

        parallelFor(par, n, [&](std::size_t i) {
            out[i] = task(i);
            if (!progressFn)
                return;
            const double work = workOf(out[i]);
            const double wall =
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count();
            std::lock_guard<std::mutex> lock(progressMutex);
            ++snapshot.completed;
            snapshot.workUnits += work;
            snapshot.wallSeconds = wall;
            progressFn(snapshot);
        });
        return out;
    }

    /** run() without work accounting. */
    template <typename Task>
    auto
    run(std::size_t n, Task &&task)
    {
        return run(n, std::forward<Task>(task),
                   [](const auto &) { return 0.0; });
    }

  private:
    Parallelism par;
    ProgressFn progressFn;
};

} // namespace exec
} // namespace treadmill

#endif // TREADMILL_EXEC_PARALLEL_RUNNER_H_
