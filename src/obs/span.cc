#include "obs/span.h"

#include <algorithm>
#include <set>

#include "util/json.h"
#include "util/strings.h"

namespace treadmill {
namespace obs {

const char *
attemptCauseName(AttemptCause cause)
{
    switch (cause) {
      case AttemptCause::Scheduled:
        return "scheduled";
      case AttemptCause::Retry:
        return "retry";
      case AttemptCause::Hedge:
        return "hedge";
    }
    return "unknown";
}

namespace {

/** The lifecycle order of every AttemptSpan stamp. */
constexpr std::size_t kAttemptStampCount = 15;

void
attemptStamps(const AttemptSpan &a,
              SimTime (&out)[kAttemptStampCount])
{
    out[0] = a.triggerAt;
    out[1] = a.clientSend;
    out[2] = a.nicArrival;
    out[3] = a.workerStart;
    out[4] = a.lbArrival;
    out[5] = a.lbDispatch;
    out[6] = a.backendNicArrival;
    out[7] = a.backendWorkerStart;
    out[8] = a.backendWorkerEnd;
    out[9] = a.backendNicDeparture;
    out[10] = a.routerReturn;
    out[11] = a.workerEnd;
    out[12] = a.nicDeparture;
    out[13] = a.clientNicArrival;
    out[14] = a.clientReceive;
}

} // namespace

bool
attemptMonotonic(const AttemptSpan &a)
{
    SimTime stamps[kAttemptStampCount];
    attemptStamps(a, stamps);
    SimTime last = 0;
    for (SimTime stamp : stamps) {
        if (stamp == kNoTime)
            continue;
        if (stamp < last)
            return false;
        last = stamp;
    }
    // The timeout, when it fired, fired after the attempt was sent.
    if (a.timeoutAt != kNoTime &&
        (a.clientSend == kNoTime || a.timeoutAt < a.clientSend))
        return false;
    return true;
}

bool
spanComplete(const SpanTrace &span)
{
    if (span.intendedSend == kNoTime || span.clientReceive == kNoTime)
        return false;
    if (span.stored == 0 || span.stored > kMaxSpanAttempts)
        return false;
    if (span.winner < 0 ||
        static_cast<std::uint32_t>(span.winner) >= span.stored)
        return false;
    std::uint32_t winners = 0;
    for (std::uint32_t i = 0; i < span.stored; ++i) {
        const AttemptSpan &a = span.attempts[i];
        if (a.won)
            ++winners;
        if (!attemptMonotonic(a))
            return false;
    }
    if (winners != 1 ||
        !span.attempts[static_cast<std::size_t>(span.winner)].won)
        return false;

    const AttemptSpan &w =
        span.attempts[static_cast<std::size_t>(span.winner)];
    const SimTime required[] = {w.triggerAt,    w.clientSend,
                                w.nicArrival,   w.workerStart,
                                w.workerEnd,    w.nicDeparture,
                                w.clientNicArrival, w.clientReceive};
    for (SimTime stamp : required)
        if (stamp == kNoTime)
            return false;
    return w.triggerAt >= span.intendedSend &&
           w.clientReceive == span.clientReceive;
}

const std::vector<std::string> &
segmentKindNames()
{
    static const std::vector<std::string> names = {
        "client queue",   "timeout wait", "failover wait",
        "retry backoff",  "hedge wait",   "net request",
        "router queue",   "router service", "lb queue",
        "fabric request", "backend queue", "backend service",
        "backend nic",    "fabric response", "router egress",
        "server queue",   "service",      "server nic",
        "net response",   "client deliver"};
    return names;
}

SimDuration
CriticalPath::totalNs() const
{
    SimDuration sum = 0;
    for (std::size_t i = 0; i < count; ++i)
        sum += segments[i].ns();
    return sum;
}

namespace {

/** Append-with-invariants helper for extractCriticalPath: every
 *  segment must start where the previous one ended and must not run
 *  backwards. */
class PathBuilder
{
  public:
    PathBuilder(CriticalPath &path, SimTime start)
        : out(path), cursor(start)
    {
        out.count = 0;
    }

    bool
    push(SegmentKind kind, SimTime begin, SimTime end,
         std::int32_t attempt, std::int32_t backendId)
    {
        if (begin != cursor || end < begin || end == kNoTime ||
            out.count >= kMaxPathSegments)
            return false;
        PathSegment &seg = out.segments[out.count++];
        seg.kind = kind;
        seg.begin = begin;
        seg.end = end;
        seg.attempt = attempt;
        seg.backendId = backendId;
        cursor = end;
        return true;
    }

    SimTime at() const { return cursor; }

    void
    restart(SimTime start)
    {
        out.count = 0;
        cursor = start;
    }

  private:
    CriticalPath &out;
    SimTime cursor;
};

/** True when the winning attempt carries the full cluster-hop
 *  timeline (it crossed a balancer tier). */
bool
hasClusterStamps(const AttemptSpan &w)
{
    return w.lbArrival != kNoTime && w.lbDispatch != kNoTime &&
           w.backendNicArrival != kNoTime &&
           w.backendWorkerStart != kNoTime &&
           w.backendWorkerEnd != kNoTime &&
           w.backendNicDeparture != kNoTime &&
           w.routerReturn != kNoTime;
}

/**
 * The pre-win chain for a retry winner: every earlier primary
 * (non-hedged) attempt contributed [trigger -> send] client queueing,
 * [send -> timeout] waiting on an unanswered attempt, and
 * [timeout -> next trigger] backoff. Returns false when a stamp is
 * missing (e.g. intermediate attempts dropped past the retention
 * cap); the caller then collapses the whole pre-win gap into one
 * catch-all backoff segment to keep the telescoping exact.
 */
bool
pushRetryChain(PathBuilder &b, const SpanTrace &span,
               const AttemptSpan &w)
{
    // Indices of the failed primaries ahead of the winner, already in
    // send (= trigger) order because attempts are stored as sent.
    std::int32_t chain[kMaxSpanAttempts];
    std::size_t chainLen = 0;
    for (std::uint32_t i = 0; i < span.stored; ++i) {
        const AttemptSpan &a = span.attempts[i];
        if (static_cast<std::int32_t>(i) == span.winner || a.hedged)
            continue;
        if (a.triggerAt == kNoTime || a.triggerAt >= w.triggerAt)
            continue;
        chain[chainLen++] = static_cast<std::int32_t>(i);
    }
    for (std::size_t k = 0; k < chainLen; ++k) {
        const AttemptSpan &p =
            span.attempts[static_cast<std::size_t>(chain[k])];
        if (p.clientSend == kNoTime || p.timeoutAt == kNoTime)
            return false;
        const SimTime nextTrigger =
            k + 1 < chainLen
                ? span.attempts[static_cast<std::size_t>(chain[k + 1])]
                      .triggerAt
                : w.triggerAt;
        if (!b.push(SegmentKind::ClientQueue, p.triggerAt,
                    p.clientSend, chain[k], -1))
            return false;
        if (!b.push(p.lbDropped ? SegmentKind::FailoverWait
                                : SegmentKind::TimeoutWait,
                    p.clientSend, p.timeoutAt, chain[k], p.backendId))
            return false;
        if (!b.push(SegmentKind::RetryBackoff, p.timeoutAt,
                    nextTrigger, chain[k], -1))
            return false;
    }
    return chainLen > 0;
}

} // namespace

bool
extractCriticalPath(const SpanTrace &span, CriticalPath &out)
{
    out.count = 0;
    if (!spanComplete(span))
        return false;
    const std::size_t widx = static_cast<std::size_t>(span.winner);
    const AttemptSpan &w = span.attempts[widx];

    PathBuilder b(out, span.intendedSend);

    // --- Pre-win waits: how the clock got from intendedSend to the
    // winning attempt's trigger. ---
    if (w.triggerAt > span.intendedSend) {
        bool covered = false;
        if (w.cause == AttemptCause::Hedge && span.stored > 0 &&
            !span.attempts[0].hedged) {
            // The hedge fired while the primary sat unanswered: the
            // whole wait from the primary's send to the hedge trigger
            // is attributable to the backend the primary was on
            // (timeouts/backoffs inside that window are collapsed --
            // the client was waiting on *some* unanswered attempt
            // either way).
            const AttemptSpan &a0 = span.attempts[0];
            if (a0.clientSend != kNoTime &&
                a0.clientSend <= w.triggerAt) {
                covered =
                    b.push(SegmentKind::ClientQueue, span.intendedSend,
                           a0.clientSend, 0, -1) &&
                    b.push(SegmentKind::HedgeWait, a0.clientSend,
                           w.triggerAt, 0, a0.backendId);
            }
        } else if (w.cause == AttemptCause::Retry) {
            covered = pushRetryChain(b, span, w);
        }
        if (!covered || b.at() != w.triggerAt) {
            // Catch-all: retention overflow or a partial chain. Keep
            // the telescoping exact with one collapsed wait segment.
            b.restart(span.intendedSend);
            if (!b.push(w.cause == AttemptCause::Hedge
                            ? SegmentKind::HedgeWait
                            : SegmentKind::RetryBackoff,
                        span.intendedSend, w.triggerAt, -1, -1))
                return false;
        }
    }

    // --- The winning attempt's wire path, hop by hop. ---
    const auto wi = static_cast<std::int32_t>(widx);
    bool ok = b.push(SegmentKind::ClientQueue, w.triggerAt,
                     w.clientSend, wi, -1) &&
              b.push(SegmentKind::NetRequest, w.clientSend,
                     w.nicArrival, wi, -1);
    if (ok && hasClusterStamps(w)) {
        ok = b.push(SegmentKind::RouterQueue, w.nicArrival,
                    w.workerStart, wi, -1) &&
             b.push(SegmentKind::RouterService, w.workerStart,
                    w.lbArrival, wi, -1) &&
             b.push(SegmentKind::LbQueue, w.lbArrival, w.lbDispatch,
                    wi, w.backendId) &&
             b.push(SegmentKind::FabricRequest, w.lbDispatch,
                    w.backendNicArrival, wi, w.backendId) &&
             b.push(SegmentKind::BackendQueue, w.backendNicArrival,
                    w.backendWorkerStart, wi, w.backendId) &&
             b.push(SegmentKind::BackendService, w.backendWorkerStart,
                    w.backendWorkerEnd, wi, w.backendId) &&
             b.push(SegmentKind::BackendNic, w.backendWorkerEnd,
                    w.backendNicDeparture, wi, w.backendId) &&
             b.push(SegmentKind::FabricResponse, w.backendNicDeparture,
                    w.routerReturn, wi, w.backendId) &&
             b.push(SegmentKind::RouterEgress, w.routerReturn,
                    w.workerEnd, wi, -1);
    } else if (ok) {
        ok = b.push(SegmentKind::ServerQueue, w.nicArrival,
                    w.workerStart, wi, w.backendId) &&
             b.push(SegmentKind::Service, w.workerStart, w.workerEnd,
                    wi, w.backendId);
    }
    ok = ok &&
         b.push(SegmentKind::ServerNic, w.workerEnd, w.nicDeparture,
                wi, -1) &&
         b.push(SegmentKind::NetResponse, w.nicDeparture,
                w.clientNicArrival, wi, -1) &&
         b.push(SegmentKind::ClientDeliver, w.clientNicArrival,
                w.clientReceive, wi, -1);
    if (!ok) {
        out.count = 0;
        return false;
    }
    out.startAt = span.intendedSend;
    out.endAt = span.clientReceive;
    return true;
}

SimDuration
ClusterDecomposition::totalNs() const
{
    SimDuration sum = 0;
    for (SimDuration n : ns)
        sum += n;
    return sum;
}

ClusterDecomposition
ClusterDecomposition::of(const SpanTrace &span)
{
    ClusterDecomposition d;
    CriticalPath path;
    if (!extractCriticalPath(span, path))
        return d;
    for (std::size_t i = 0; i < path.count; ++i) {
        const PathSegment &seg = path.segments[i];
        d.ns[static_cast<std::size_t>(seg.kind)] += seg.ns();
    }
    d.endToEndNs = span.clientReceive - span.intendedSend;
    // Hedge-overlap diagnostic: both the primary and its hedge were in
    // flight from the hedge's send to the first response. Off the
    // critical path by definition -- overlap is what hedging buys.
    for (std::uint32_t i = 0; i < span.stored; ++i) {
        const AttemptSpan &a = span.attempts[i];
        if (a.hedged && a.clientSend != kNoTime &&
            a.clientSend < span.clientReceive) {
            d.hedgeOverlapNs = span.clientReceive - a.clientSend;
            break;
        }
    }
    d.valid = true;
    return d;
}

SpanRecorder::SpanRecorder(const TraceConfig &config) : cfg(config)
{
    if (cfg.sampleEvery == 0)
        cfg.sampleEvery = 1;
}

void
SpanRecorder::reserveFor(std::size_t expected)
{
    if (!cfg.enabled)
        return;
    retained.reserve(std::min(
        expected / static_cast<std::size_t>(cfg.sampleEvery) + 1,
        cfg.maxTraces));
}

std::vector<SpanTrace>
SpanRecorder::takeSpans()
{
    std::vector<SpanTrace> out = std::move(retained);
    retained.clear();
    return out;
}

namespace {

/** Emit a stamp into @p obj (microseconds) only when it is set, so
 *  partial attempt timelines serialize without sentinel noise. */
void
putStamp(json::Object &obj, const char *key, SimTime stamp)
{
    if (stamp != kNoTime)
        obj[key] = json::Value(toMicros(stamp));
}

json::Value
attemptToJson(const AttemptSpan &a)
{
    json::Object at;
    at["seq"] = json::Value(static_cast<std::int64_t>(a.seqId));
    at["attempt"] = json::Value(static_cast<std::int64_t>(a.attempt));
    at["cause"] = json::Value(attemptCauseName(a.cause));
    at["hedged"] = json::Value(a.hedged);
    at["won"] = json::Value(a.won);
    at["lb_dropped"] = json::Value(a.lbDropped);
    at["backend"] =
        json::Value(static_cast<std::int64_t>(a.backendId));
    at["lb_failovers"] =
        json::Value(static_cast<std::int64_t>(a.lbFailovers));
    putStamp(at, "trigger_us", a.triggerAt);
    putStamp(at, "client_send_us", a.clientSend);
    putStamp(at, "timeout_us", a.timeoutAt);
    putStamp(at, "nic_arrival_us", a.nicArrival);
    putStamp(at, "worker_start_us", a.workerStart);
    putStamp(at, "lb_arrival_us", a.lbArrival);
    putStamp(at, "lb_dispatch_us", a.lbDispatch);
    putStamp(at, "backend_nic_arrival_us", a.backendNicArrival);
    putStamp(at, "backend_worker_start_us", a.backendWorkerStart);
    putStamp(at, "backend_worker_end_us", a.backendWorkerEnd);
    putStamp(at, "backend_nic_departure_us", a.backendNicDeparture);
    putStamp(at, "router_return_us", a.routerReturn);
    putStamp(at, "worker_end_us", a.workerEnd);
    putStamp(at, "nic_departure_us", a.nicDeparture);
    putStamp(at, "client_nic_arrival_us", a.clientNicArrival);
    putStamp(at, "client_receive_us", a.clientReceive);
    return json::Value(std::move(at));
}

} // namespace

std::string
spanJson(const std::vector<SpanTrace> &spans)
{
    json::Array rows;
    for (const SpanTrace &s : spans) {
        json::Object row;
        row["logical"] =
            json::Value(static_cast<std::int64_t>(s.logicalSeqId));
        row["client"] =
            json::Value(static_cast<std::int64_t>(s.clientIndex));
        row["conn"] =
            json::Value(static_cast<std::int64_t>(s.connectionId));
        row["op"] = json::Value(s.isGet ? "get" : "set");
        row["hit"] = json::Value(s.hit);
        putStamp(row, "intended_send_us", s.intendedSend);
        putStamp(row, "client_receive_us", s.clientReceive);
        row["attempt_count"] =
            json::Value(static_cast<std::int64_t>(s.attemptCount));
        row["winner"] =
            json::Value(static_cast<std::int64_t>(s.winner));
        json::Array attempts;
        for (std::uint32_t i = 0; i < s.stored; ++i)
            attempts.push_back(attemptToJson(s.attempts[i]));
        row["attempts"] = json::Value(std::move(attempts));
        rows.push_back(json::Value(std::move(row)));
    }
    json::Object doc;
    doc["spans"] = json::Value(std::move(rows));
    json::Object other;
    other["tool"] = json::Value("treadmill");
    other["schema"] = json::Value("span/1");
    doc["otherData"] = json::Value(std::move(other));
    return json::Value(std::move(doc)).dump();
}

namespace {

/** One "X" event on an attempt's lane. */
json::Value
attemptHopEvent(const SpanTrace &s, const AttemptSpan &a,
                const std::string &name, SimTime begin, SimTime end)
{
    json::Object ev;
    ev["name"] = json::Value(name);
    ev["cat"] = json::Value("attempt");
    ev["ph"] = json::Value("X");
    ev["ts"] = json::Value(toMicros(begin));
    ev["dur"] = json::Value(toMicros(end - begin));
    ev["pid"] = json::Value(static_cast<std::int64_t>(s.clientIndex));
    ev["tid"] = json::Value(static_cast<std::int64_t>(a.seqId));
    json::Object args;
    args["logical"] =
        json::Value(static_cast<std::int64_t>(s.logicalSeqId));
    args["attempt"] =
        json::Value(static_cast<std::int64_t>(a.attempt));
    args["cause"] = json::Value(attemptCauseName(a.cause));
    args["won"] = json::Value(a.won);
    if (a.backendId >= 0)
        args["backend"] =
            json::Value(static_cast<std::int64_t>(a.backendId));
    ev["args"] = json::Value(std::move(args));
    return json::Value(std::move(ev));
}

/** Tile one attempt's lane with every consecutive stamped hop. */
void
appendAttemptLane(json::Array &events, const SpanTrace &s,
                  const AttemptSpan &a)
{
    const auto &names = segmentKindNames();
    const auto nameOf = [&names](SegmentKind kind) {
        return names[static_cast<std::size_t>(kind)];
    };
    struct Hop {
        SimTime begin, end;
        SegmentKind kind;
    };
    const bool cluster = a.lbArrival != kNoTime;
    const Hop hops[] = {
        {a.triggerAt, a.clientSend, SegmentKind::ClientQueue},
        {a.clientSend, a.nicArrival, SegmentKind::NetRequest},
        {a.nicArrival, a.workerStart,
         cluster ? SegmentKind::RouterQueue
                 : SegmentKind::ServerQueue},
        {a.workerStart, a.lbArrival, SegmentKind::RouterService},
        {a.lbArrival, a.lbDispatch, SegmentKind::LbQueue},
        {a.lbDispatch, a.backendNicArrival,
         SegmentKind::FabricRequest},
        {a.backendNicArrival, a.backendWorkerStart,
         SegmentKind::BackendQueue},
        {a.backendWorkerStart, a.backendWorkerEnd,
         SegmentKind::BackendService},
        {a.backendWorkerEnd, a.backendNicDeparture,
         SegmentKind::BackendNic},
        {a.backendNicDeparture, a.routerReturn,
         SegmentKind::FabricResponse},
        {a.routerReturn, a.workerEnd, SegmentKind::RouterEgress},
        {a.workerStart, a.workerEnd, SegmentKind::Service},
        {a.workerEnd, a.nicDeparture, SegmentKind::ServerNic},
        {a.nicDeparture, a.clientNicArrival,
         SegmentKind::NetResponse},
        {a.clientNicArrival, a.clientReceive,
         SegmentKind::ClientDeliver},
    };
    for (const Hop &hop : hops) {
        // The classic path renders workerStart->workerEnd as one
        // "service" hop; the cluster path splits that interval via
        // the lb/fabric/backend stamps instead.
        if (hop.kind == SegmentKind::Service && cluster)
            continue;
        if (cluster &&
            (hop.kind == SegmentKind::ServerQueue))
            continue;
        if (!cluster &&
            (hop.kind == SegmentKind::RouterService ||
             hop.kind == SegmentKind::LbQueue ||
             hop.kind == SegmentKind::FabricRequest ||
             hop.kind == SegmentKind::BackendQueue ||
             hop.kind == SegmentKind::BackendService ||
             hop.kind == SegmentKind::BackendNic ||
             hop.kind == SegmentKind::FabricResponse ||
             hop.kind == SegmentKind::RouterEgress))
            continue;
        if (hop.begin == kNoTime || hop.end == kNoTime ||
            hop.end < hop.begin)
            continue;
        events.push_back(
            attemptHopEvent(s, a, nameOf(hop.kind), hop.begin,
                            hop.end));
    }
}

} // namespace

std::string
chromeSpanJson(const std::vector<SpanTrace> &spans,
               const std::vector<TraceAnnotation> &annotations)
{
    json::Array events;

    if (!annotations.empty()) {
        const std::int64_t faultPid = -1;
        json::Object meta;
        meta["name"] = json::Value("process_name");
        meta["ph"] = json::Value("M");
        meta["pid"] = json::Value(faultPid);
        json::Object metaArgs;
        metaArgs["name"] = json::Value("faults");
        meta["args"] = json::Value(std::move(metaArgs));
        events.push_back(json::Value(std::move(meta)));
        for (const TraceAnnotation &a : annotations) {
            json::Object ev;
            ev["name"] = json::Value(a.name);
            ev["cat"] = json::Value("fault");
            ev["ph"] = json::Value("X");
            ev["ts"] = json::Value(toMicros(a.start));
            ev["dur"] = json::Value(toMicros(a.end - a.start));
            ev["pid"] = json::Value(faultPid);
            ev["tid"] = json::Value(static_cast<std::int64_t>(0));
            events.push_back(json::Value(std::move(ev)));
        }
    }

    std::set<std::uint64_t> clients;
    for (const SpanTrace &s : spans)
        clients.insert(s.clientIndex);
    for (std::uint64_t client : clients) {
        json::Object meta;
        meta["name"] = json::Value("process_name");
        meta["ph"] = json::Value("M");
        meta["pid"] = json::Value(static_cast<std::int64_t>(client));
        json::Object args;
        args["name"] = json::Value(
            strprintf("client %llu",
                      static_cast<unsigned long long>(client)));
        meta["args"] = json::Value(std::move(args));
        events.push_back(json::Value(std::move(meta)));
    }

    for (const SpanTrace &s : spans) {
        for (std::uint32_t i = 0; i < s.stored; ++i) {
            const AttemptSpan &a = s.attempts[i];
            json::Object meta;
            meta["name"] = json::Value("thread_name");
            meta["ph"] = json::Value("M");
            meta["pid"] =
                json::Value(static_cast<std::int64_t>(s.clientIndex));
            meta["tid"] =
                json::Value(static_cast<std::int64_t>(a.seqId));
            json::Object args;
            args["name"] = json::Value(strprintf(
                "%llu/%s#%u%s",
                static_cast<unsigned long long>(s.logicalSeqId),
                attemptCauseName(a.cause), a.attempt,
                a.won ? " win" : ""));
            meta["args"] = json::Value(std::move(args));
            events.push_back(json::Value(std::move(meta)));
            appendAttemptLane(events, s, a);
        }
    }

    json::Object doc;
    doc["traceEvents"] = json::Value(std::move(events));
    doc["displayTimeUnit"] = json::Value("ms");
    json::Object other;
    other["tool"] = json::Value("treadmill");
    other["schema"] = json::Value("span-lanes/1");
    doc["otherData"] = json::Value(std::move(other));
    return json::Value(std::move(doc)).dump();
}

} // namespace obs
} // namespace treadmill
