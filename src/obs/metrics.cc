#include "obs/metrics.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"
#include "util/strings.h"

namespace treadmill {
namespace obs {

Histogram::Histogram() : buckets(kBucketCount, 0) {}

int
Histogram::bucketFor(double value)
{
    if (!(value > 0.0))
        return 0;
    int exp = 0;
    const double mantissa = std::frexp(value, &exp); // in [0.5, 1)
    const int sub = static_cast<int>((mantissa - 0.5) *
                                     (2.0 * kSubBuckets));
    const int idx = (exp - kMinExp) * kSubBuckets +
                    std::clamp(sub, 0, kSubBuckets - 1);
    return std::clamp(idx, 0, kBucketCount - 1);
}

double
Histogram::bucketMid(int idx)
{
    const int exp = idx / kSubBuckets + kMinExp;
    const int sub = idx % kSubBuckets;
    const double lo =
        std::ldexp(0.5 + static_cast<double>(sub) /
                             (2.0 * kSubBuckets),
                   exp);
    const double hi =
        std::ldexp(0.5 + static_cast<double>(sub + 1) /
                             (2.0 * kSubBuckets),
                   exp);
    return 0.5 * (lo + hi);
}

void
Histogram::record(double value)
{
    if (value < 0.0)
        value = 0.0;
    if (observations == 0) {
        minSeen = value;
        maxSeen = value;
    } else {
        minSeen = std::min(minSeen, value);
        maxSeen = std::max(maxSeen, value);
    }
    ++observations;
    total += value;
    ++buckets[static_cast<std::size_t>(bucketFor(value))];
}

double
Histogram::mean() const
{
    if (observations == 0)
        return 0.0;
    return total / static_cast<double>(observations);
}

double
Histogram::quantile(double q) const
{
    if (q < 0.0 || q > 1.0)
        throw ConfigError("quantile must be in [0, 1]");
    if (observations == 0)
        return 0.0;

    // Rank of the q-quantile observation (1-based, nearest-rank).
    const auto rank = static_cast<std::uint64_t>(std::max(
        1.0, std::ceil(q * static_cast<double>(observations))));
    std::uint64_t cumulative = 0;
    for (int idx = 0; idx < kBucketCount; ++idx) {
        cumulative += buckets[static_cast<std::size_t>(idx)];
        if (cumulative >= rank)
            return std::clamp(bucketMid(idx), minSeen, maxSeen);
    }
    return maxSeen;
}

namespace {

/** Find-or-create in one of the registry's maps. */
template <typename T>
T &
findOrCreate(std::map<std::string, std::unique_ptr<T>> &metrics,
             const std::string &name)
{
    if (name.empty())
        throw ConfigError("metric name must not be empty");
    auto it = metrics.find(name);
    if (it == metrics.end())
        it = metrics.emplace(name, std::make_unique<T>()).first;
    return *it->second;
}

} // namespace

Counter &
MetricsRegistry::counter(const std::string &name)
{
    return findOrCreate(counters, name);
}

Gauge &
MetricsRegistry::gauge(const std::string &name)
{
    return findOrCreate(gauges, name);
}

Histogram &
MetricsRegistry::histogram(const std::string &name)
{
    return findOrCreate(histograms, name);
}

void
MetricsRegistry::claimScope(const std::string &scope)
{
    if (scope.empty())
        throw ConfigError("metric scope must not be empty");
    if (!claimedScopes.insert(scope).second)
        throw ConfigError(strprintf(
            "metric scope \"%s\" already claimed: two components are "
            "registering metrics under the same prefix",
            scope.c_str()));
}

std::size_t
MetricsRegistry::size() const
{
    return counters.size() + gauges.size() + histograms.size();
}

json::Value
MetricsRegistry::snapshot() const
{
    json::Object doc;

    json::Object counterObj;
    for (const auto &[name, metric] : counters)
        counterObj[name] =
            json::Value(static_cast<std::int64_t>(metric->value()));
    doc["counters"] = json::Value(std::move(counterObj));

    json::Object gaugeObj;
    for (const auto &[name, metric] : gauges)
        gaugeObj[name] = json::Value(metric->value());
    doc["gauges"] = json::Value(std::move(gaugeObj));

    json::Object histObj;
    for (const auto &[name, metric] : histograms) {
        json::Object h;
        h["count"] = json::Value(
            static_cast<std::int64_t>(metric->count()));
        h["sum"] = json::Value(metric->sum());
        h["mean"] = json::Value(metric->mean());
        h["min"] = json::Value(metric->min());
        h["max"] = json::Value(metric->max());
        h["p50"] = json::Value(metric->quantile(0.5));
        h["p90"] = json::Value(metric->quantile(0.9));
        h["p99"] = json::Value(metric->quantile(0.99));
        h["p999"] = json::Value(metric->quantile(0.999));
        histObj[name] = json::Value(std::move(h));
    }
    doc["histograms"] = json::Value(std::move(histObj));
    return json::Value(std::move(doc));
}

} // namespace obs
} // namespace treadmill
