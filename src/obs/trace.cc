#include "obs/trace.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "util/json.h"
#include "util/strings.h"

namespace treadmill {
namespace obs {

bool
timelineMonotonic(const RequestTrace &t)
{
    const SimTime order[] = {t.intendedSend,     t.clientSend,
                             t.nicArrival,       t.workerStart,
                             t.workerEnd,        t.nicDeparture,
                             t.clientNicArrival, t.clientReceive};
    for (SimTime stamp : order)
        if (stamp == kNoTime)
            return false;
    for (std::size_t i = 1; i < std::size(order); ++i)
        if (order[i] < order[i - 1])
            return false;
    if (t.winnerTrigger != kNoTime &&
        (t.winnerTrigger < t.intendedSend ||
         t.winnerTrigger > t.clientSend))
        return false;
    return true;
}

double
Decomposition::totalUs() const
{
    return preWinUs + clientQueueUs + netRequestUs + serverQueueUs +
           serviceUs + serverNicUs + netResponseUs + clientDeliverUs;
}

/** The winning attempt's trigger instant, clamped to the timeline so
 *  a malformed stamp degrades to the classic no-pre-win split. */
static SimTime
winnerTriggerOf(const RequestTrace &t)
{
    if (t.winnerTrigger == kNoTime || t.winnerTrigger < t.intendedSend ||
        t.winnerTrigger > t.clientSend)
        return t.intendedSend;
    return t.winnerTrigger;
}

Decomposition
Decomposition::of(const RequestTrace &t)
{
    Decomposition d;
    const SimTime trigger = winnerTriggerOf(t);
    d.preWinUs = toMicros(trigger - t.intendedSend);
    d.clientQueueUs = toMicros(t.clientSend - trigger);
    d.netRequestUs = toMicros(t.nicArrival - t.clientSend);
    d.serverQueueUs = toMicros(t.workerStart - t.nicArrival);
    d.serviceUs = toMicros(t.workerEnd - t.workerStart);
    d.serverNicUs = toMicros(t.nicDeparture - t.workerEnd);
    d.netResponseUs = toMicros(t.clientNicArrival - t.nicDeparture);
    d.clientDeliverUs = toMicros(t.clientReceive - t.clientNicArrival);
    d.endToEndUs = toMicros(t.clientReceive - t.intendedSend);
    return d;
}

const std::vector<std::string> &
decompositionComponentNames()
{
    static const std::vector<std::string> names = {
        "pre-win wait",  "client queue", "net request",
        "server queue",  "service",      "server nic",
        "net response",  "client deliver"};
    return names;
}

std::vector<double>
decompositionComponents(const Decomposition &d)
{
    return {d.preWinUs,    d.clientQueueUs, d.netRequestUs,
            d.serverQueueUs, d.serviceUs,   d.serverNicUs,
            d.netResponseUs, d.clientDeliverUs};
}

TraceRecorder::TraceRecorder(const TraceConfig &config) : cfg(config)
{
    if (cfg.sampleEvery == 0)
        cfg.sampleEvery = 1;
}

bool
TraceRecorder::record(const RequestTrace &trace)
{
    if (!cfg.enabled)
        return false;
    const bool sampled = offered % cfg.sampleEvery == 0;
    ++offered;
    if (!sampled || spans.size() >= cfg.maxTraces)
        return false;
    spans.push_back(trace);
    return true;
}

std::vector<RequestTrace>
TraceRecorder::takeTraces()
{
    std::vector<RequestTrace> out = std::move(spans);
    spans.clear();
    return out;
}

namespace {

/** One "X" (complete) trace event. */
json::Value
spanEvent(const RequestTrace &t, const std::string &name, SimTime begin,
          SimTime end)
{
    json::Object ev;
    ev["name"] = json::Value(name);
    ev["cat"] = json::Value("request");
    ev["ph"] = json::Value("X");
    ev["ts"] = json::Value(toMicros(begin));
    ev["dur"] = json::Value(toMicros(end - begin));
    ev["pid"] = json::Value(static_cast<std::int64_t>(t.clientIndex));
    ev["tid"] = json::Value(static_cast<std::int64_t>(t.seqId));
    json::Object args;
    args["seq"] = json::Value(static_cast<std::int64_t>(t.seqId));
    args["conn"] =
        json::Value(static_cast<std::int64_t>(t.connectionId));
    args["op"] = json::Value(t.isGet ? "get" : "set");
    args["hit"] = json::Value(t.hit);
    // Only cluster runs know a backend; the classic path stays at -1
    // and the export stays byte-identical to the pre-cluster format.
    if (t.backendId >= 0)
        args["backend"] =
            json::Value(static_cast<std::int64_t>(t.backendId));
    ev["args"] = json::Value(std::move(args));
    return json::Value(std::move(ev));
}

} // namespace

std::string
chromeTraceJson(const std::vector<RequestTrace> &traces,
                const std::vector<TraceAnnotation> &annotations,
                const TelemetrySeries *telemetry)
{
    json::Array events;

    // Telemetry gauges render as counter tracks on their own process.
    if (telemetry != nullptr)
        appendChromeCounterEvents(events, *telemetry);

    // Fault windows (and other annotations) live on their own process
    // so they render as a separate swim-lane above the request spans.
    if (!annotations.empty()) {
        const std::int64_t faultPid = -1;
        json::Object meta;
        meta["name"] = json::Value("process_name");
        meta["ph"] = json::Value("M");
        meta["pid"] = json::Value(faultPid);
        json::Object metaArgs;
        metaArgs["name"] = json::Value("faults");
        meta["args"] = json::Value(std::move(metaArgs));
        events.push_back(json::Value(std::move(meta)));

        for (const TraceAnnotation &a : annotations) {
            json::Object ev;
            ev["name"] = json::Value(a.name);
            ev["cat"] = json::Value("fault");
            ev["ph"] = json::Value("X");
            ev["ts"] = json::Value(toMicros(a.start));
            ev["dur"] = json::Value(toMicros(a.end - a.start));
            ev["pid"] = json::Value(faultPid);
            ev["tid"] = json::Value(static_cast<std::int64_t>(0));
            events.push_back(json::Value(std::move(ev)));
        }
    }

    // Process-name metadata: one "process" per client machine.
    std::set<std::uint64_t> clients;
    for (const RequestTrace &t : traces)
        clients.insert(t.clientIndex);
    for (std::uint64_t client : clients) {
        json::Object meta;
        meta["name"] = json::Value("process_name");
        meta["ph"] = json::Value("M");
        meta["pid"] = json::Value(static_cast<std::int64_t>(client));
        json::Object args;
        args["name"] =
            json::Value(strprintf("client %llu",
                                  static_cast<unsigned long long>(
                                      client)));
        meta["args"] = json::Value(std::move(args));
        events.push_back(json::Value(std::move(meta)));
    }

    const auto &names = decompositionComponentNames();
    for (const RequestTrace &t : traces) {
        const SimTime edges[] = {t.intendedSend,     winnerTriggerOf(t),
                                 t.clientSend,       t.nicArrival,
                                 t.workerStart,      t.workerEnd,
                                 t.nicDeparture,     t.clientNicArrival,
                                 t.clientReceive};
        for (std::size_t i = 0; i < names.size(); ++i)
            events.push_back(
                spanEvent(t, names[i], edges[i], edges[i + 1]));
    }

    json::Object doc;
    doc["traceEvents"] = json::Value(std::move(events));
    doc["displayTimeUnit"] = json::Value("ms");
    json::Object other;
    other["tool"] = json::Value("treadmill");
    doc["otherData"] = json::Value(std::move(other));
    return json::Value(std::move(doc)).dump();
}

std::string
decompositionCsv(const std::vector<RequestTrace> &traces)
{
    std::string out =
        "seq_id,client,op,hit,pre_win_us,client_queue_us,"
        "net_request_us,server_queue_us,service_us,server_nic_us,"
        "net_response_us,client_deliver_us,component_sum_us,"
        "end_to_end_us\n";
    for (const RequestTrace &t : traces) {
        const Decomposition d = Decomposition::of(t);
        out += strprintf(
            "%llu,%llu,%s,%d,%.3f,%.3f,%.3f,%.3f,%.3f,%.3f,%.3f,%.3f,"
            "%.3f,%.3f\n",
            static_cast<unsigned long long>(t.seqId),
            static_cast<unsigned long long>(t.clientIndex),
            t.isGet ? "get" : "set", t.hit ? 1 : 0, d.preWinUs,
            d.clientQueueUs, d.netRequestUs, d.serverQueueUs,
            d.serviceUs, d.serverNicUs, d.netResponseUs,
            d.clientDeliverUs, d.totalUs(), d.endToEndUs);
    }
    return out;
}

double
maxDecompositionErrorUs(const std::vector<RequestTrace> &traces)
{
    double worst = 0.0;
    for (const RequestTrace &t : traces) {
        const Decomposition d = Decomposition::of(t);
        worst = std::max(worst, std::fabs(d.totalUs() - d.endToEndUs));
    }
    return worst;
}

} // namespace obs
} // namespace treadmill
