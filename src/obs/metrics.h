/**
 * @file
 * The metrics registry: lightweight counters, gauges, and log-bucketed
 * histograms owned per-Simulation.
 *
 * The paper's thesis is *attributing* tail latency to its source; the
 * registry is how every component (client control loop, network links,
 * server NIC/workers, the event queue itself) publishes the telemetry
 * that attribution needs. Ownership is per-Simulation so that parallel
 * experiment runs (seed-isolated, see DESIGN.md §5) never share mutable
 * metric state and remain bit-exact at any thread count: metrics are
 * pure observers and never touch an Rng stream or the event order.
 *
 * Hot-path cost: components resolve their metrics by name once, at
 * construction, and then bump plain integers/doubles through the held
 * reference. Recording into a histogram is a frexp plus an array
 * increment -- no allocation, no locking (a Simulation is
 * single-threaded by construction).
 */

#ifndef TREADMILL_OBS_METRICS_H_
#define TREADMILL_OBS_METRICS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "util/json.h"

namespace treadmill {
namespace obs {

/** A monotonically increasing event count. */
class Counter
{
  public:
    void add(std::uint64_t n = 1) { total += n; }
    std::uint64_t value() const { return total; }

  private:
    std::uint64_t total = 0;
};

/** A point-in-time value (queue depth, utilization). */
class Gauge
{
  public:
    void set(double v) { current = v; }
    void add(double delta) { current += delta; }
    double value() const { return current; }

  private:
    double current = 0.0;
};

/**
 * A log-bucketed histogram of non-negative values.
 *
 * Buckets are geometric with four sub-buckets per octave (~9% relative
 * width), covering [2^-10, 2^40) -- microsecond latencies from
 * sub-nanosecond to ~12 days. Values outside the range clamp to the
 * edge buckets; exact min/max/sum are tracked alongside so means are
 * exact and quantiles are clamped into [min, max].
 */
class Histogram
{
  public:
    Histogram();

    /** Record one observation (negative values clamp to zero). */
    void record(double value);

    std::uint64_t count() const { return observations; }
    double sum() const { return total; }
    double mean() const;
    double min() const { return observations > 0 ? minSeen : 0.0; }
    double max() const { return observations > 0 ? maxSeen : 0.0; }

    /**
     * Approximate q-quantile (bucket midpoint, clamped to [min, max]).
     * Returns 0 when empty.
     */
    double quantile(double q) const;

  private:
    static constexpr int kSubBuckets = 4;   ///< Per octave.
    static constexpr int kMinExp = -10;     ///< 2^-10 lower bound.
    static constexpr int kMaxExp = 40;      ///< 2^40 upper bound.
    static constexpr int kBucketCount =
        (kMaxExp - kMinExp) * kSubBuckets;

    /** Bucket index for @p value (clamped into range). */
    static int bucketFor(double value);

    /** Midpoint of bucket @p idx. */
    static double bucketMid(int idx);

    std::vector<std::uint64_t> buckets;
    std::uint64_t observations = 0;
    double total = 0.0;
    double minSeen = 0.0;
    double maxSeen = 0.0;
};

/**
 * Owns every metric of one Simulation and hands out stable references.
 *
 * Metrics are created on first lookup; repeated lookups under the same
 * name return the same object. Storage is name-sorted so snapshot()
 * output is deterministic.
 */
class MetricsRegistry
{
  public:
    MetricsRegistry() = default;

    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    /** @name Find-or-create by hierarchical name ("client0.issued").
     * References stay valid for the registry's lifetime.
     * @{
     */
    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    Histogram &histogram(const std::string &name);
    /** @} */

    /**
     * Claim exclusive ownership of a metric-name scope (the dotted
     * prefix a component registers all its metrics under, e.g.
     * "backend2" or "lb"). Scoped components call this once at
     * construction; a second claim of the same scope throws
     * ConfigError instead of letting two components silently share --
     * and corrupt -- each other's counters. Plain find-or-create
     * lookups are unaffected: intentional sharing (countEvent) still
     * works for names whose scope nobody claimed.
     *
     * @throws ConfigError when @p scope was already claimed.
     */
    void claimScope(const std::string &scope);

    /** Total number of registered metrics. */
    std::size_t size() const;

    /**
     * Serialize every metric to JSON:
     * {"counters": {...}, "gauges": {...}, "histograms": {name:
     * {count, sum, mean, min, max, p50, p90, p99, p999}}}.
     */
    json::Value snapshot() const;

  private:
    std::map<std::string, std::unique_ptr<Counter>> counters;
    std::map<std::string, std::unique_ptr<Gauge>> gauges;
    std::map<std::string, std::unique_ptr<Histogram>> histograms;
    std::set<std::string> claimedScopes;
};

} // namespace obs
} // namespace treadmill

#endif // TREADMILL_OBS_METRICS_H_
