/**
 * @file
 * Request lifecycle tracing: sampled per-request timelines exported as
 * Chrome trace-event JSON (loadable in Perfetto / chrome://tracing)
 * and as a per-request latency-decomposition CSV.
 *
 * Every Request already carries a complete timeline of simulated-clock
 * stamps (server/request.h); the recorder snapshots those stamps into
 * plain RequestTrace records so the timeline survives the request's
 * destruction and can be decomposed into the per-component latencies
 * the paper attributes (client queueing, network, server queueing,
 * service). Because all stamps are integer nanoseconds, the component
 * decomposition telescopes *exactly* to the end-to-end latency.
 */

#ifndef TREADMILL_OBS_TRACE_H_
#define TREADMILL_OBS_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "obs/telemetry.h"
#include "util/types.h"

namespace treadmill {
namespace obs {

/** The immutable timeline of one completed request. */
struct RequestTrace {
    std::uint64_t seqId = 0;
    std::uint64_t connectionId = 0;
    std::uint64_t clientIndex = 0;
    bool isGet = true;
    bool hit = false;
    /** Backend shard that served the request; -1 = direct path. */
    std::int32_t backendId = -1;

    /** @name Simulated-clock stamps (ns), in lifecycle order.
     * @{
     */
    SimTime intendedSend = kNoTime; ///< Open-loop schedule instant.
    SimTime clientSend = kNoTime;   ///< Left the client CPU.
    SimTime nicArrival = kNoTime;   ///< Reached the server NIC.
    SimTime workerStart = kNoTime;  ///< Worker began processing.
    SimTime workerEnd = kNoTime;    ///< Worker finished.
    SimTime nicDeparture = kNoTime; ///< Response left the server NIC.
    SimTime clientNicArrival = kNoTime; ///< Response at the client NIC.
    SimTime clientReceive = kNoTime;    ///< Response callback ran.
    /** @} */

    /**
     * When the client decided to send the *winning* attempt. For
     * retried/hedged requests the stamps above belong to whichever
     * attempt answered first while latency is still measured from the
     * original intendedSend, so [intendedSend, winnerTrigger] is
     * retry/hedge policy delay -- the pre-win wait -- and must not be
     * mis-bucketed as client queueing. kNoTime (or == intendedSend,
     * the single-attempt case) means no pre-win gap.
     */
    SimTime winnerTrigger = kNoTime;
};

/**
 * True when every stamp is set and the timeline is monotone:
 * intendedSend <= clientSend <= nicArrival <= workerStart <= workerEnd
 * <= nicDeparture <= clientNicArrival <= clientReceive. When
 * winnerTrigger is set it must additionally sit inside
 * [intendedSend, clientSend].
 */
bool timelineMonotonic(const RequestTrace &trace);

/**
 * The full-path latency decomposition of one request, in microseconds.
 *
 * The eight components partition [intendedSend, clientReceive], so
 * totalUs() equals endToEndUs exactly (integer-nanosecond stamps).
 */
struct Decomposition {
    double preWinUs = 0.0;        ///< Retry/hedge policy delay before the
                                  ///< winning attempt was even triggered:
                                  ///< intendedSend->winnerTrigger.
    double clientQueueUs = 0.0;   ///< Send slip: winnerTrigger->clientSend.
    double netRequestUs = 0.0;    ///< clientSend->nicArrival.
    double serverQueueUs = 0.0;   ///< NIC-to-worker wait: nicArrival->workerStart.
    double serviceUs = 0.0;       ///< workerStart->workerEnd.
    double serverNicUs = 0.0;     ///< workerEnd->nicDeparture.
    double netResponseUs = 0.0;   ///< nicDeparture->clientNicArrival.
    double clientDeliverUs = 0.0; ///< Kernel + callback: clientNicArrival->clientReceive.
    double endToEndUs = 0.0;      ///< intendedSend->clientReceive.

    /** Sum of the eight components. */
    double totalUs() const;

    /** Decompose @p trace (stamps must be monotone and complete). */
    static Decomposition of(const RequestTrace &trace);
};

/** Component display names, in path order (matches Decomposition). */
const std::vector<std::string> &decompositionComponentNames();

/** Component values of @p d in the same order as the names. */
std::vector<double> decompositionComponents(const Decomposition &d);

/** Tracing knobs; disabled recording costs one branch per request. */
struct TraceConfig {
    bool enabled = false;
    /** Record every Nth completed request (1 = all). */
    std::uint64_t sampleEvery = 1;
    /** Hard cap on retained spans (newest dropped once full). */
    std::size_t maxTraces = 1u << 20;
};

/**
 * Collects sampled RequestTraces during a run.
 *
 * Sampling is by completion order modulo sampleEvery -- deterministic
 * given the simulation's (deterministic) event order, and independent
 * of any Rng stream, so enabling tracing cannot perturb a run.
 */
class TraceRecorder
{
  public:
    explicit TraceRecorder(const TraceConfig &config = {});

    /** Offer one completed request; returns true if it was retained. */
    bool record(const RequestTrace &trace);

    /** Requests offered so far (sampled or not). */
    std::uint64_t seen() const { return offered; }

    const std::vector<RequestTrace> &traces() const { return spans; }

    /** Move the retained traces out (recorder keeps counting). */
    std::vector<RequestTrace> takeTraces();

  private:
    TraceConfig cfg;
    std::vector<RequestTrace> spans;
    std::uint64_t offered = 0;
};

/**
 * A named wall-of-time annotation overlaid on the trace, e.g. an
 * injected fault window. Kept as a plain struct so producers (the
 * fault injector) need no dependency on obs beyond this header.
 */
struct TraceAnnotation {
    std::string name;     ///< Display label ("server_stall").
    SimTime start = 0;    ///< Window start (simulated ns).
    SimTime end = 0;      ///< Window end (simulated ns).
};

/**
 * Render traces as a Chrome trace-event JSON document: one "process"
 * per client, one track per request, eight complete ("ph":"X") spans
 * covering the full path. Timestamps are microseconds. Optional
 * @p annotations (fault windows) render as spans on a dedicated
 * "faults" process so they line up against request timelines, and an
 * optional @p telemetry series renders as "ph":"C" counter tracks on
 * a dedicated "telemetry" process.
 */
std::string
chromeTraceJson(const std::vector<RequestTrace> &traces,
                const std::vector<TraceAnnotation> &annotations = {},
                const TelemetrySeries *telemetry = nullptr);

/**
 * Render traces as a per-request decomposition CSV: one row per
 * request with the eight component latencies, their sum, and the
 * end-to-end latency (all microseconds).
 */
std::string decompositionCsv(const std::vector<RequestTrace> &traces);

/**
 * Largest |sum-of-components - end-to-end| across @p traces, in
 * microseconds (0 for an empty set). Exactness check for tests/CI.
 */
double maxDecompositionErrorUs(const std::vector<RequestTrace> &traces);

} // namespace obs
} // namespace treadmill

#endif // TREADMILL_OBS_TRACE_H_
