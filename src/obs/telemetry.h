/**
 * @file
 * Deterministic sim-time telemetry: periodic snapshots of named gauges
 * (queue depths, inflight counts, utilizations, pool occupancy,
 * event-queue depth) collected into aligned time series.
 *
 * The sampler itself is passive -- obs sits at the bottom of the
 * layering DAG and cannot schedule simulation events -- so the owner
 * (the experiment harness) drives sample() on a fixed simulated-time
 * period. Probes are read-only and Rng-free: sampling adds events to
 * the queue but never reorders or perturbs the simulated trajectory,
 * so a telemetry-on run completes the same requests at the same
 * simulated instants as a telemetry-off run.
 *
 * Exports: an aligned CSV (one row per tick, one column per probe)
 * and Chrome trace counter events ("ph":"C") that render as stacked
 * counter tracks alongside the span lanes.
 */

#ifndef TREADMILL_OBS_TELEMETRY_H_
#define TREADMILL_OBS_TELEMETRY_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "util/json.h"
#include "util/types.h"

namespace treadmill {
namespace obs {

/** Telemetry knobs; disabled sampling costs nothing at all. */
struct TelemetryConfig {
    bool enabled = false;
    /** Snapshot period in simulated microseconds. */
    double periodUs = 1000.0;
    /** Hard cap on retained ticks (sampling stops once full). */
    std::size_t maxSamples = 1u << 16;
};

/** Aligned time series: values[probe][tick] sampled at at[tick]. */
struct TelemetrySeries {
    std::vector<std::string> probes;
    std::vector<SimTime> at;
    std::vector<std::vector<double>> values;

    std::size_t ticks() const { return at.size(); }
};

/**
 * Collects periodic snapshots of registered probes. Register every
 * probe before the run starts (registration order is the stable
 * column/export order), then call sample(now) on the owner's period.
 */
class TelemetrySampler
{
  public:
    using Probe = std::function<double()>;

    explicit TelemetrySampler(const TelemetryConfig &config = {});

    /** Register a named read-only gauge probe (pre-run only). */
    void addProbe(const std::string &name, Probe probe);

    bool enabled() const { return cfg.enabled; }

    SimDuration
    period() const
    {
        return static_cast<SimDuration>(microseconds(cfg.periodUs));
    }

    /** True once the tick cap is reached (owner stops rescheduling). */
    bool
    full() const
    {
        return series_.at.size() >= cfg.maxSamples;
    }

    /** Snapshot every probe at simulated instant @p now. */
    void sample(SimTime now);

    const TelemetrySeries &series() const { return series_; }

    /** Move the collected series out. */
    TelemetrySeries takeSeries();

  private:
    TelemetryConfig cfg;
    std::vector<Probe> probes;
    TelemetrySeries series_;
};

/**
 * Render a series as CSV: header "time_us,<probe>,..." then one row
 * per tick with %.3f-formatted values.
 */
std::string telemetryCsv(const TelemetrySeries &series);

/**
 * Render a series as Chrome trace counter events: one "ph":"C" event
 * per probe per tick on a dedicated "telemetry" process (pid -2), so
 * the gauges plot as stacked counter tracks above the request lanes.
 * Append the result to a trace's event list via chromeTraceJson()'s
 * @p telemetry parameter or merge it into a custom document.
 */
std::string chromeCounterJson(const TelemetrySeries &series);

/** Append the raw "ph":"C" counter events of @p series to an existing
 *  trace-event array (used by chromeTraceJson() to merge gauges into
 *  the request-lane document). */
void appendChromeCounterEvents(json::Array &events,
                               const TelemetrySeries &series);

} // namespace obs
} // namespace treadmill

#endif // TREADMILL_OBS_TELEMETRY_H_
