/**
 * @file
 * Attempt-span tracing: the multi-attempt, multi-hop successor of the
 * flat RequestTrace timeline.
 *
 * A SpanTrace owns the whole life of one *logical* request: one
 * AttemptSpan per wire attempt (original / retry-k / hedge), each
 * carrying the full hop timeline including the cluster-tier stamps
 * (balancer arrival/dispatch, fabric transit, backend residence) and
 * the resilience stamps (trigger instant, timeout instant). Exactly
 * one attempt is marked as the winner -- the one whose response the
 * client consumed.
 *
 * On top of the raw spans, extractCriticalPath() computes the exact
 * segment chain that determined clientReceive: timeout waits, retry
 * backoffs, and hedge waits on the losing side, then the winning
 * attempt's wire path hop by hop. Segments share endpoints, so the
 * integer-nanosecond sum telescopes *exactly* to end-to-end latency;
 * ClusterDecomposition aggregates the chain per segment kind.
 *
 * Everything here is plain data over util only (obs sits at the bottom
 * of the layering DAG); producers in core copy Request stamps in.
 */

#ifndef TREADMILL_OBS_SPAN_H_
#define TREADMILL_OBS_SPAN_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/trace.h"
#include "util/types.h"

namespace treadmill {
namespace obs {

/** Why an attempt was sent. */
enum class AttemptCause : std::uint8_t {
    Scheduled = 0, ///< The open-loop schedule's first send.
    Retry = 1,     ///< A timeout elapsed and the retry budget allowed.
    Hedge = 2,     ///< The hedge timer fired unanswered.
};

/** Display name of @p cause ("scheduled", "retry", "hedge"). */
const char *attemptCauseName(AttemptCause cause);

/** Attempts retained inline per span; extras beyond this are counted
 *  in SpanTrace::attemptCount but their stamps are dropped (the winner
 *  is always retained). */
constexpr std::uint32_t kMaxSpanAttempts = 8;

/**
 * The hop timeline of one wire attempt. Stamps are kNoTime until the
 * attempt reached that hop; losing attempts legitimately stop partway
 * (e.g. a hedge still in flight when the primary answered).
 */
struct AttemptSpan {
    std::uint64_t seqId = 0;
    std::uint32_t attempt = 0; ///< 0 = first send, 1+ = clones.
    AttemptCause cause = AttemptCause::Scheduled;
    bool hedged = false;
    bool won = false;       ///< This attempt's response was consumed.
    bool lbDropped = false; ///< Balancer dropped it (replicas down).
    std::int32_t backendId = -1; ///< Shard dispatched to; -1 = none.
    std::uint32_t lbFailovers = 0; ///< Down replicas skipped at dispatch.

    /** @name Client-side stamps
     * @{ */
    SimTime triggerAt = kNoTime;  ///< Client decided to send it.
    SimTime clientSend = kNoTime; ///< Left the client CPU.
    SimTime timeoutAt = kNoTime;  ///< Its timeout fired (if ever).
    /** @} */

    /** @name Router / classic-server stamps
     * @{ */
    SimTime nicArrival = kNoTime;
    SimTime workerStart = kNoTime;
    SimTime workerEnd = kNoTime;
    SimTime nicDeparture = kNoTime;
    /** @} */

    /** @name Cluster-tier stamps (kNoTime on the classic path)
     * @{ */
    SimTime lbArrival = kNoTime;
    SimTime lbDispatch = kNoTime;
    SimTime backendNicArrival = kNoTime;
    SimTime backendWorkerStart = kNoTime;
    SimTime backendWorkerEnd = kNoTime;
    SimTime backendNicDeparture = kNoTime;
    SimTime routerReturn = kNoTime;
    /** @} */

    /** @name Client-side completion stamps
     * @{ */
    SimTime clientNicArrival = kNoTime;
    SimTime clientReceive = kNoTime;
    /** @} */
};

/** The full attempt tree of one completed logical request. */
struct SpanTrace {
    std::uint64_t logicalSeqId = 0;
    std::uint64_t connectionId = 0; ///< First attempt's connection.
    std::uint64_t clientIndex = 0;
    bool isGet = true;
    bool hit = false;

    SimTime intendedSend = kNoTime;  ///< Open-loop schedule instant.
    SimTime clientReceive = kNoTime; ///< Winning response consumed.

    std::uint32_t attemptCount = 0; ///< Wire attempts actually sent.
    std::uint32_t stored = 0;       ///< Attempts retained below.
    std::int32_t winner = -1;       ///< Index of the winning attempt.
    std::array<AttemptSpan, kMaxSpanAttempts> attempts{};

    double
    endToEndUs() const
    {
        return toMicros(clientReceive - intendedSend);
    }
};

/**
 * True when every *stamped* hop of @p a is monotone in lifecycle
 * order (unset stamps are skipped; a partial timeline can still be
 * monotone).
 */
bool attemptMonotonic(const AttemptSpan &a);

/**
 * True when the span is structurally sound: a valid winner index,
 * exactly one attempt marked won, every retained attempt monotone,
 * and the winning attempt's end-to-end timeline complete
 * (triggerAt through clientReceive all stamped).
 */
bool spanComplete(const SpanTrace &span);

/**
 * One segment kind of the critical path. The first block are
 * *pre-win* waits (the losing side of retries and hedges); the rest
 * are hops of the winning attempt's wire path. Classic
 * (non-cluster) runs use ServerQueue/Service/ServerNic; cluster runs
 * split the same interval into router, balancer, fabric, and backend
 * segments.
 */
enum class SegmentKind : std::uint8_t {
    ClientQueue = 0, ///< Trigger to actual send (client CPU queue).
    TimeoutWait,     ///< Send to timeout of a failed attempt.
    FailoverWait,    ///< Timeout window of a balancer-dropped attempt.
    RetryBackoff,    ///< Timeout to the next attempt's trigger.
    HedgeWait,       ///< Primary send to the winning hedge's trigger.
    NetRequest,      ///< Client NIC to server NIC.
    RouterQueue,     ///< Router NIC to router worker (cluster).
    RouterService,   ///< Router deserialize up to the balancer.
    LbQueue,         ///< Balancer arrival to dispatch.
    FabricRequest,   ///< Dispatch to backend NIC.
    BackendQueue,    ///< Backend NIC to backend worker.
    BackendService,  ///< Backend worker execution.
    BackendNic,      ///< Backend worker end to backend NIC out.
    FabricResponse,  ///< Backend NIC out to router return.
    RouterEgress,    ///< Router return to router serialize end.
    ServerQueue,     ///< Server NIC to worker (classic path).
    Service,         ///< Worker execution (classic path).
    ServerNic,       ///< Worker end to server NIC out.
    NetResponse,     ///< Server NIC out to client NIC.
    ClientDeliver,   ///< Client NIC to response callback.
};

/** Number of SegmentKind values. */
constexpr std::size_t kSegmentKindCount =
    static_cast<std::size_t>(SegmentKind::ClientDeliver) + 1;

/** Display names indexed by SegmentKind, in declaration order. */
const std::vector<std::string> &segmentKindNames();

/** One hop (or wait) of a critical path. */
struct PathSegment {
    SegmentKind kind = SegmentKind::ClientQueue;
    SimTime begin = 0;
    SimTime end = 0;
    /** Attempt the segment belongs to (index into SpanTrace). */
    std::int32_t attempt = -1;
    /** Backend the time is attributable to; -1 = client/net/router. */
    std::int32_t backendId = -1;

    SimDuration
    ns() const
    {
        return end - begin;
    }
};

/** Upper bound on segments per path: ~12 wire hops for the winner
 *  plus three waits per losing attempt. */
constexpr std::size_t kMaxPathSegments = 12 + 3 * kMaxSpanAttempts;

/** The exact segment chain that determined one span's completion. */
struct CriticalPath {
    std::array<PathSegment, kMaxPathSegments> segments{};
    std::size_t count = 0;
    SimTime startAt = 0; ///< == span.intendedSend.
    SimTime endAt = 0;   ///< == span.clientReceive.

    /** Exact integer sum of the segment durations. */
    SimDuration totalNs() const;
};

/**
 * Extract the critical path of @p span into @p out. Returns false
 * (leaving @p out empty) when the span is incomplete. On success the
 * segments tile [intendedSend, clientReceive] with shared endpoints:
 * totalNs() == clientReceive - intendedSend holds exactly.
 */
bool extractCriticalPath(const SpanTrace &span, CriticalPath &out);

/**
 * Per-kind aggregation of one span's critical path: the cluster-aware
 * decomposition. Integer-nanosecond sums per SegmentKind, telescoping
 * exactly to end-to-end; plus the hedge-overlap diagnostic (time the
 * primary and its hedge were in flight simultaneously -- *not* a
 * critical-path segment, the overlap is the point of hedging).
 */
struct ClusterDecomposition {
    std::array<SimDuration, kSegmentKindCount> ns{};
    SimDuration endToEndNs = 0;
    SimDuration hedgeOverlapNs = 0;
    bool valid = false; ///< False when the span was incomplete.

    SimDuration totalNs() const;

    double
    us(SegmentKind kind) const
    {
        return toMicros(ns[static_cast<std::size_t>(kind)]);
    }

    double
    endToEndUs() const
    {
        return toMicros(endToEndNs);
    }

    static ClusterDecomposition of(const SpanTrace &span);
};

/**
 * Collects sampled SpanTraces during a run. Sampling is by completion
 * order modulo TraceConfig::sampleEvery -- deterministic and Rng-free,
 * exactly like TraceRecorder -- and shares the same TraceConfig, so
 * one knob drives both the flat and the span exports.
 */
class SpanRecorder
{
  public:
    explicit SpanRecorder(const TraceConfig &config = {});

    /** Pre-size retention so steady-state recording never grows the
     *  vector (@p expected completions, before sampling). */
    void reserveFor(std::size_t expected);

    // tmlint:hot-path-begin -- called once per completed logical
    // request when tracing is on; must stay alloc- and string-free.
    /** Offer one completed span; returns true if it was retained. */
    bool
    record(const SpanTrace &span)
    {
        if (!cfg.enabled)
            return false;
        const bool sampled = offered % cfg.sampleEvery == 0;
        ++offered;
        if (!sampled || retained.size() >= cfg.maxTraces)
            return false;
        retained.push_back(span);
        return true;
    }
    // tmlint:hot-path-end

    /** Spans offered so far (sampled or not). */
    std::uint64_t seen() const { return offered; }

    const std::vector<SpanTrace> &spans() const { return retained; }

    /** Move the retained spans out (recorder keeps counting). */
    std::vector<SpanTrace> takeSpans();

  private:
    TraceConfig cfg;
    std::vector<SpanTrace> retained;
    std::uint64_t offered = 0;
};

/**
 * Render spans as a standalone JSON document for external tooling and
 * CI validation: {"spans": [{logical, client, winner, attempts:
 * [{seq, attempt, cause, won, backend, stamps...}]}]}. Deterministic
 * ordering, integer microsecond-scaled stamps with 3 decimals.
 */
std::string spanJson(const std::vector<SpanTrace> &spans);

/**
 * Render spans into Chrome trace-event JSON: one "process" per
 * client, one lane per wire attempt (labelled original/retry-k/
 * hedge), each lane tiled with its critical-path or hop segments.
 * Complements chromeTraceJson()'s flat per-request lanes.
 */
std::string chromeSpanJson(
    const std::vector<SpanTrace> &spans,
    const std::vector<TraceAnnotation> &annotations = {});

} // namespace obs
} // namespace treadmill

#endif // TREADMILL_OBS_SPAN_H_
