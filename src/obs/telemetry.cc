#include "obs/telemetry.h"

#include <utility>

#include "util/error.h"
#include "util/strings.h"

namespace treadmill {
namespace obs {

TelemetrySampler::TelemetrySampler(const TelemetryConfig &config)
    : cfg(config)
{
    if (cfg.enabled && cfg.periodUs <= 0.0)
        throw ConfigError("telemetry period must be positive");
}

void
TelemetrySampler::addProbe(const std::string &name, Probe probe)
{
    if (!probe)
        throw ConfigError("telemetry probe needs a callable");
    if (!series_.at.empty())
        throw ConfigError(
            "telemetry probes must be registered before sampling");
    series_.probes.push_back(name);
    series_.values.emplace_back();
    probes.push_back(std::move(probe));
}

void
TelemetrySampler::sample(SimTime now)
{
    if (!cfg.enabled || full())
        return;
    series_.at.push_back(now);
    for (std::size_t p = 0; p < probes.size(); ++p)
        series_.values[p].push_back(probes[p]());
}

TelemetrySeries
TelemetrySampler::takeSeries()
{
    TelemetrySeries out = std::move(series_);
    series_ = TelemetrySeries{};
    series_.probes = out.probes; // Keep columns if sampling resumes.
    series_.values.resize(series_.probes.size());
    return out;
}

std::string
telemetryCsv(const TelemetrySeries &series)
{
    std::string out = "time_us";
    for (const std::string &probe : series.probes) {
        out += ',';
        out += probe;
    }
    out += '\n';
    for (std::size_t t = 0; t < series.at.size(); ++t) {
        out += strprintf("%.3f", toMicros(series.at[t]));
        for (std::size_t p = 0; p < series.values.size(); ++p)
            out += strprintf(",%.3f", series.values[p][t]);
        out += '\n';
    }
    return out;
}

void
appendChromeCounterEvents(json::Array &events,
                          const TelemetrySeries &series)
{
    if (series.at.empty())
        return;
    const std::int64_t telemetryPid = -2;
    json::Object meta;
    meta["name"] = json::Value("process_name");
    meta["ph"] = json::Value("M");
    meta["pid"] = json::Value(telemetryPid);
    json::Object metaArgs;
    metaArgs["name"] = json::Value("telemetry");
    meta["args"] = json::Value(std::move(metaArgs));
    events.push_back(json::Value(std::move(meta)));

    for (std::size_t t = 0; t < series.at.size(); ++t) {
        for (std::size_t p = 0; p < series.probes.size(); ++p) {
            json::Object ev;
            ev["name"] = json::Value(series.probes[p]);
            ev["cat"] = json::Value("telemetry");
            ev["ph"] = json::Value("C");
            ev["ts"] = json::Value(toMicros(series.at[t]));
            ev["pid"] = json::Value(telemetryPid);
            json::Object args;
            args["value"] = json::Value(series.values[p][t]);
            ev["args"] = json::Value(std::move(args));
            events.push_back(json::Value(std::move(ev)));
        }
    }
}

std::string
chromeCounterJson(const TelemetrySeries &series)
{
    json::Array events;
    appendChromeCounterEvents(events, series);
    json::Object doc;
    doc["traceEvents"] = json::Value(std::move(events));
    doc["displayTimeUnit"] = json::Value("ms");
    json::Object other;
    other["tool"] = json::Value("treadmill");
    other["schema"] = json::Value("telemetry/1");
    doc["otherData"] = json::Value(std::move(other));
    return json::Value(std::move(doc)).dump();
}

} // namespace obs
} // namespace treadmill
